#include "storage/database.h"

#include <gtest/gtest.h>

namespace mad {
namespace {

Schema NamedSchema() {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("name", DataType::kString).ok());
  return s;
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.DefineAtomType("state", NamedSchema()).ok());
    ASSERT_TRUE(db_.DefineAtomType("area", NamedSchema()).ok());
    ASSERT_TRUE(db_.DefineLinkType("state-area", "state", "area").ok());
  }

  Database db_{"GEO_DB"};
};

TEST_F(DatabaseTest, DefineAtomTypeRejectsDuplicates) {
  EXPECT_EQ(db_.DefineAtomType("state", NamedSchema()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db_.DefineAtomType("", NamedSchema()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, DefineLinkTypeValidatesAtomTypes) {
  EXPECT_EQ(db_.DefineLinkType("x", "state", "bogus").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.DefineLinkType("state-area", "state", "area").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DatabaseTest, ReflexiveLinkTypeAllowed) {
  ASSERT_TRUE(db_.DefineAtomType("part", NamedSchema()).ok());
  ASSERT_TRUE(db_.DefineLinkType("composition", "part", "part").ok());
  auto lt = db_.GetLinkType("composition");
  ASSERT_TRUE(lt.ok());
  EXPECT_TRUE((*lt)->reflexive());
}

TEST_F(DatabaseTest, MultipleLinkTypesBetweenSamePairAllowed) {
  EXPECT_TRUE(db_.DefineLinkType("state-area-2", "state", "area").ok());
}

TEST_F(DatabaseTest, InsertAtomAssignsFreshIds) {
  auto sp = db_.InsertAtom("state", {Value("SP")});
  auto mg = db_.InsertAtom("state", {Value("MG")});
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(mg.ok());
  EXPECT_NE(*sp, *mg);
  EXPECT_TRUE(sp->valid());
  auto at = db_.GetAtomType("state");
  ASSERT_TRUE(at.ok());
  EXPECT_EQ((*at)->occurrence().size(), 2u);
}

TEST_F(DatabaseTest, InsertAtomValidatesSchema) {
  EXPECT_FALSE(db_.InsertAtom("state", {Value(int64_t{1})}).ok());
  EXPECT_FALSE(db_.InsertAtom("state", {}).ok());
  EXPECT_FALSE(db_.InsertAtom("bogus", {Value("x")}).ok());
}

TEST_F(DatabaseTest, InsertAtomWithIdPreservesIdentityAcrossTypes) {
  auto sp = db_.InsertAtom("state", {Value("SP")});
  ASSERT_TRUE(sp.ok());
  // The same entity may live in a second atom type (restriction results).
  ASSERT_TRUE(db_.DefineAtomType("state2", NamedSchema()).ok());
  ASSERT_TRUE(db_.InsertAtomWithId("state2", *sp, {Value("SP")}).ok());
  // Fresh ids never collide with preserved ids.
  auto next = db_.InsertAtom("state2", {Value("MG")});
  ASSERT_TRUE(next.ok());
  EXPECT_NE(*next, *sp);
}

TEST_F(DatabaseTest, LinkReferentialIntegrityOnInsert) {
  auto sp = db_.InsertAtom("state", {Value("SP")});
  auto a1 = db_.InsertAtom("area", {Value("a1")});
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(a1.ok());

  EXPECT_TRUE(db_.InsertLink("state-area", *sp, *a1).ok());
  // Duplicate link rejected.
  EXPECT_EQ(db_.InsertLink("state-area", *sp, *a1).code(),
            StatusCode::kAlreadyExists);
  // Wrong-side atom rejected: a1 is not a state.
  EXPECT_EQ(db_.InsertLink("state-area", *a1, *sp).code(),
            StatusCode::kConstraintViolation);
  // Nonexistent atom rejected.
  EXPECT_EQ(db_.InsertLink("state-area", AtomId{999}, *a1).code(),
            StatusCode::kConstraintViolation);
}

TEST_F(DatabaseTest, DeleteAtomCascadesLinks) {
  auto sp = db_.InsertAtom("state", {Value("SP")});
  auto a1 = db_.InsertAtom("area", {Value("a1")});
  auto a2 = db_.InsertAtom("area", {Value("a2")});
  ASSERT_TRUE(db_.InsertLink("state-area", *sp, *a1).ok());
  ASSERT_TRUE(db_.InsertLink("state-area", *sp, *a2).ok());

  ASSERT_TRUE(db_.DeleteAtom("state", *sp).ok());
  auto lt = db_.GetLinkType("state-area");
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ((*lt)->occurrence().size(), 0u)
      << "no dangling links may survive atom deletion";
  // Areas are untouched.
  EXPECT_EQ((*db_.GetAtomType("area"))->occurrence().size(), 2u);
}

TEST_F(DatabaseTest, UpdateAtomReplacesValues) {
  auto sp = db_.InsertAtom("state", {Value("SP")});
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(db_.UpdateAtom("state", *sp, {Value("Sao Paulo")}).ok());
  auto v = db_.GetAttribute("state", *sp, "name");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "Sao Paulo");
  EXPECT_EQ(db_.UpdateAtom("state", AtomId{999}, {Value("x")}).code(),
            StatusCode::kNotFound);
}

TEST_F(DatabaseTest, SymmetricTraversal) {
  auto sp = db_.InsertAtom("state", {Value("SP")});
  auto a1 = db_.InsertAtom("area", {Value("a1")});
  ASSERT_TRUE(db_.InsertLink("state-area", *sp, *a1).ok());

  auto lt = db_.GetLinkType("state-area");
  ASSERT_TRUE(lt.ok());
  // Forward: state -> area.
  auto fwd = (*lt)->occurrence().Partners(*sp, LinkDirection::kForward);
  ASSERT_EQ(fwd.size(), 1u);
  EXPECT_EQ(fwd[0], *a1);
  // Backward: area -> state, exercising the bidirectional link pair.
  auto bwd = (*lt)->occurrence().Partners(*a1, LinkDirection::kBackward);
  ASSERT_EQ(bwd.size(), 1u);
  EXPECT_EQ(bwd[0], *sp);
}

TEST_F(DatabaseTest, DropAtomTypeDropsTouchingLinkTypes) {
  ASSERT_TRUE(db_.DropAtomType("area").ok());
  EXPECT_FALSE(db_.HasLinkType("state-area"));
  EXPECT_TRUE(db_.HasAtomType("state"));
  EXPECT_EQ(db_.DropAtomType("area").code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, UniqueNameGeneration) {
  EXPECT_EQ(db_.UniqueAtomTypeName("border"), "border");
  ASSERT_TRUE(db_.DefineAtomType("border", NamedSchema()).ok());
  EXPECT_EQ(db_.UniqueAtomTypeName("border"), "border@2");
  EXPECT_EQ(db_.UniqueLinkTypeName("state-area"), "state-area@2");
}

TEST_F(DatabaseTest, Statistics) {
  ASSERT_TRUE(db_.InsertAtom("state", {Value("SP")}).ok());
  ASSERT_TRUE(db_.InsertAtom("area", {Value("a1")}).ok());
  EXPECT_EQ(db_.atom_type_count(), 2u);
  EXPECT_EQ(db_.link_type_count(), 1u);
  EXPECT_EQ(db_.total_atom_count(), 2u);
  EXPECT_EQ(db_.total_link_count(), 0u);
}

TEST_F(DatabaseTest, TypeListsKeepDefinitionOrder) {
  auto types = db_.atom_types();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0]->name(), "state");
  EXPECT_EQ(types[1]->name(), "area");
}

TEST_F(DatabaseTest, LinkTypesTouching) {
  ASSERT_TRUE(db_.DefineAtomType("edge", NamedSchema()).ok());
  ASSERT_TRUE(db_.DefineLinkType("area-edge", "area", "edge").ok());
  auto touching = db_.LinkTypesTouching("area");
  ASSERT_EQ(touching.size(), 2u);
  EXPECT_EQ(touching[0]->name(), "state-area");
  EXPECT_EQ(touching[1]->name(), "area-edge");
  EXPECT_TRUE(db_.LinkTypesTouching("bogus").empty());
}

TEST(LinkStoreTest, EraseAllOf) {
  LinkStore store;
  ASSERT_TRUE(store.Insert(AtomId{1}, AtomId{2}).ok());
  ASSERT_TRUE(store.Insert(AtomId{1}, AtomId{3}).ok());
  ASSERT_TRUE(store.Insert(AtomId{4}, AtomId{1}).ok());
  ASSERT_TRUE(store.Insert(AtomId{4}, AtomId{5}).ok());
  EXPECT_EQ(store.EraseAllOf(AtomId{1}), 3u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Contains(AtomId{4}, AtomId{5}));
}

TEST(LinkStoreTest, ReflexiveSelfLinkBothDirections) {
  LinkStore store;
  // composition: part#1 (super) contains part#2 (sub).
  ASSERT_TRUE(store.Insert(AtomId{1}, AtomId{2}).ok());
  EXPECT_EQ(store.Partners(AtomId{1}, LinkDirection::kForward).size(), 1u);
  EXPECT_TRUE(store.Partners(AtomId{1}, LinkDirection::kBackward).empty());
  EXPECT_EQ(store.Partners(AtomId{2}, LinkDirection::kBackward).size(), 1u);
}

TEST(AtomStoreTest, EraseKeepsOrderAndIndex) {
  AtomStore store;
  ASSERT_TRUE(store.Insert(Atom{AtomId{1}, {Value("a")}}).ok());
  ASSERT_TRUE(store.Insert(Atom{AtomId{2}, {Value("b")}}).ok());
  ASSERT_TRUE(store.Insert(Atom{AtomId{3}, {Value("c")}}).ok());
  ASSERT_TRUE(store.Erase(AtomId{2}).ok());
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.atoms()[0].id, AtomId{1});
  EXPECT_EQ(store.atoms()[1].id, AtomId{3});
  ASSERT_NE(store.Find(AtomId{3}), nullptr);
  EXPECT_EQ(store.Find(AtomId{3})->values[0].AsString(), "c");
  EXPECT_EQ(store.Find(AtomId{2}), nullptr);
  EXPECT_EQ(store.Erase(AtomId{2}).code(), StatusCode::kNotFound);
}

TEST(AtomStoreTest, RejectsInvalidAndDuplicateIds) {
  AtomStore store;
  EXPECT_EQ(store.Insert(Atom{AtomId::Invalid(), {}}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(store.Insert(Atom{AtomId{1}, {}}).ok());
  EXPECT_EQ(store.Insert(Atom{AtomId{1}, {}}).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace mad
