#include "core/value.h"

#include <gtest/gtest.h>

#include "core/data_type.h"

namespace mad {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeName(DataType::kString), "STRING");
  EXPECT_STREQ(DataTypeName(DataType::kBool), "BOOL");
  EXPECT_STREQ(DataTypeName(DataType::kNull), "NULL");
}

TEST(DataTypeTest, FromNameIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(DataTypeFromName("int64"), DataType::kInt64);
  EXPECT_EQ(DataTypeFromName("INT"), DataType::kInt64);
  EXPECT_EQ(DataTypeFromName("Double"), DataType::kDouble);
  EXPECT_EQ(DataTypeFromName("float"), DataType::kDouble);
  EXPECT_EQ(DataTypeFromName("STRING"), DataType::kString);
  EXPECT_EQ(DataTypeFromName("text"), DataType::kString);
  EXPECT_EQ(DataTypeFromName("bool"), DataType::kBool);
  EXPECT_EQ(DataTypeFromName("boolean"), DataType::kBool);
  EXPECT_EQ(DataTypeFromName("blob"), DataType::kNull);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(true).AsBool(), true);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{1000}).ToString(), "1000");
  EXPECT_EQ(Value("SP").ToString(), "'SP'");
  EXPECT_EQ(Value(false).ToString(), "FALSE");
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{3}), Value(3.5));
  EXPECT_GT(Value(4.5), Value(int64_t{4}));
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value(), Value(int64_t{-100}));
  EXPECT_LT(Value(), Value("a"));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, CrossTypeRankOrdering) {
  // bool < numeric < string; the exact order is an implementation choice
  // but must be total and consistent.
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1'000'000}), Value(""));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_EQ(Value().Hash(), Value().Hash());
}

TEST(ValueTest, ToNumeric) {
  ASSERT_TRUE(Value(int64_t{7}).ToNumeric().ok());
  EXPECT_DOUBLE_EQ(*Value(int64_t{7}).ToNumeric(), 7.0);
  ASSERT_TRUE(Value(1.5).ToNumeric().ok());
  EXPECT_FALSE(Value("x").ToNumeric().ok());
  EXPECT_FALSE(Value().ToNumeric().ok());
}

TEST(ValueTest, LargeInt64ExactEquality) {
  int64_t big = int64_t{1} << 62;
  EXPECT_EQ(Value(big), Value(big));
  EXPECT_LT(Value(big - 1), Value(big));
}

}  // namespace
}  // namespace mad
