#include "mql/session.h"

#include <gtest/gtest.h>

#include <set>

#include "algebra/atom_algebra.h"
#include "mql/lexer.h"
#include "mql/parser.h"
#include "workload/bom.h"
#include "workload/geo.h"

namespace mad {
namespace mql {
namespace {

// ---- Lexer -------------------------------------------------------------------

TEST(MqlLexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT ALL FROM state WHERE hectare >= 1000;");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  ASSERT_EQ(tokens->size(), 10u);  // includes end marker
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSelect);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[3].text, "state");
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[7].int_value, 1000);
}

TEST(MqlLexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From WHERE");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSelect);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kFrom);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kWhere);
}

TEST(MqlLexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
  EXPECT_FALSE(Tokenize("'unterminated").ok());
}

TEST(MqlLexerTest, LinkRefsCarryDashes) {
  auto tokens = Tokenize("state-[state-area]-area");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].text, "state");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDash);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLinkRef);
  EXPECT_EQ((*tokens)[2].text, "state-area");
  EXPECT_FALSE(Tokenize("state-[oops").ok());
}

TEST(MqlLexerTest, NumbersAndComments) {
  auto tokens = Tokenize("3.5 42 -- trailing comment\n7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[0].double_value, 3.5);
  EXPECT_EQ((*tokens)[1].int_value, 42);
  EXPECT_EQ((*tokens)[2].int_value, 7);
}

TEST(MqlLexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("SELECT @").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// ---- Parser -------------------------------------------------------------------

TEST(MqlParserTest, ChainStructure) {
  auto stmt = ParseStatement("SELECT ALL FROM mt_state(state-area-edge-point);");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& select = std::get<SelectStatement>(*stmt);
  EXPECT_TRUE(select.select_all);
  EXPECT_EQ(select.from.molecule_name, "mt_state");
  const StructureNode* node = select.from.structure.get();
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->atom, "state");
  ASSERT_EQ(node->branches.size(), 1u);
  // Chain: each node links to exactly one child.
  EXPECT_EQ(node->branches[0].child->atom, "area");
  EXPECT_EQ(node->branches[0].child->branches[0].child->atom, "edge");
}

TEST(MqlParserTest, BranchingStructure) {
  auto stmt =
      ParseStatement("SELECT ALL FROM point-edge-(area-state,net-river) "
                     "WHERE point.name = 'pn';");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& select = std::get<SelectStatement>(*stmt);
  EXPECT_TRUE(select.from.molecule_name.empty());
  const StructureNode* point = select.from.structure.get();
  EXPECT_EQ(point->atom, "point");
  const StructureNode* edge = point->branches[0].child.get();
  EXPECT_EQ(edge->atom, "edge");
  ASSERT_EQ(edge->branches.size(), 2u);
  EXPECT_EQ(edge->branches[0].child->atom, "area");
  EXPECT_EQ(edge->branches[1].child->atom, "net");
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.where->ToString(), "(point.name = 'pn')");
}

TEST(MqlParserTest, ExplicitAndRecursiveLinks) {
  auto stmt = ParseStatement("SELECT ALL FROM part-[composition*];");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& select = std::get<SelectStatement>(*stmt);
  const auto& branch = select.from.structure->branches[0];
  EXPECT_TRUE(branch.recursive);
  EXPECT_FALSE(branch.reverse);
  EXPECT_EQ(branch.recursive_depth, -1);
  EXPECT_EQ(*branch.link, "composition");

  auto bounded = ParseStatement("SELECT ALL FROM part-[composition~*3];");
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  const auto& b2 = std::get<SelectStatement>(*bounded).from.structure->branches[0];
  EXPECT_TRUE(b2.recursive);
  EXPECT_TRUE(b2.reverse);
  EXPECT_EQ(b2.recursive_depth, 3);
}

TEST(MqlParserTest, ProjectionItems) {
  auto stmt = ParseStatement(
      "SELECT state.name, area, point.* FROM state-area-edge-point;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& select = std::get<SelectStatement>(*stmt);
  EXPECT_FALSE(select.select_all);
  ASSERT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[0].label, "state");
  EXPECT_EQ(*select.items[0].attribute, "name");
  EXPECT_FALSE(select.items[1].attribute.has_value());
  EXPECT_FALSE(select.items[2].attribute.has_value());
}

TEST(MqlParserTest, DdlAndDml) {
  auto create = ParseStatement(
      "CREATE ATOM TYPE state (name STRING, hectare INT64);");
  ASSERT_TRUE(create.ok()) << create.status();
  const auto& cat = std::get<CreateAtomTypeStatement>(*create);
  EXPECT_EQ(cat.name, "state");
  ASSERT_EQ(cat.attributes.size(), 2u);
  EXPECT_EQ(cat.attributes[1].second, DataType::kInt64);

  auto link = ParseStatement("CREATE LINK TYPE owns (state, area);");
  ASSERT_TRUE(link.ok());
  const auto& clt = std::get<CreateLinkTypeStatement>(*link);
  EXPECT_EQ(clt.first, "state");
  EXPECT_EQ(clt.second, "area");

  auto insert = ParseStatement(
      "INSERT INTO state VALUES ('SP', 1000), ('MG', 900);");
  ASSERT_TRUE(insert.ok());
  const auto& ia = std::get<InsertAtomStatement>(*insert);
  EXPECT_EQ(ia.rows.size(), 2u);
  EXPECT_EQ(ia.rows[0][0].AsString(), "SP");

  auto insert_link = ParseStatement(
      "INSERT LINK owns FROM (name = 'SP') TO (name = 'a7');");
  ASSERT_TRUE(insert_link.ok()) << insert_link.status();
  const auto& il = std::get<InsertLinkStatement>(*insert_link);
  EXPECT_EQ(il.link_type, "owns");

  auto del = ParseStatement("DELETE FROM state WHERE name = 'SP';");
  ASSERT_TRUE(del.ok());
  EXPECT_NE(std::get<DeleteStatement>(*del).predicate, nullptr);
}

TEST(MqlParserTest, NegativeNumbersAndPrecedence) {
  auto stmt = ParseStatement(
      "SELECT ALL FROM state WHERE hectare + 2 * 3 > -1 AND NOT name = 'x' "
      "OR hectare < 5;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& select = std::get<SelectStatement>(*stmt);
  // OR binds loosest, AND next, NOT tightest among the connectives.
  EXPECT_EQ(select.where->ToString(),
            "((((hectare + (2 * 3)) > (0 - 1)) AND (NOT (name = 'x'))) OR "
            "(hectare < 5))");
}

TEST(MqlParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT;").ok());
  EXPECT_FALSE(ParseStatement("SELECT ALL;").ok());
  EXPECT_FALSE(ParseStatement("SELECT ALL FROM;").ok());
  EXPECT_FALSE(ParseStatement("FROM state;").ok());
  EXPECT_FALSE(ParseStatement("SELECT ALL FROM a-(b,c)-d;").ok());
  EXPECT_FALSE(ParseStatement("SELECT ALL FROM state WHERE;").ok());
  EXPECT_FALSE(ParseStatement("CREATE ATOM TYPE t (a BLOB);").ok());
  EXPECT_FALSE(ParseStatement("SELECT ALL FROM state; extra").ok());
}

TEST(MqlParserTest, ParseScript) {
  auto script = ParseScript(
      "CREATE ATOM TYPE t (a STRING); INSERT INTO t VALUES ('x');");
  ASSERT_TRUE(script.ok()) << script.status();
  EXPECT_EQ(script->size(), 2u);
  EXPECT_FALSE(ParseScript("CREATE ATOM TYPE t (a STRING) SELECT").ok());
}

// ---- Session / end-to-end -------------------------------------------------------

class MqlSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ids = workload::BuildFigure4GeoDatabase(db_);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ids_ = *ids;
    session_ = std::make_unique<Session>(&db_);
  }

  std::set<std::string> RootNames(const QueryResult& result) {
    std::set<std::string> names;
    const MoleculeType& mt = *result.molecules;
    const AtomType* at = *db_.GetAtomType(mt.description().root_node().type_name);
    size_t idx = *at->description().IndexOf("name");
    for (const Molecule& m : mt.molecules()) {
      names.insert(at->occurrence().Find(m.root())->values[idx].AsString());
    }
    return names;
  }

  Database db_{"GEO_DB"};
  workload::GeoIds ids_;
  std::unique_ptr<Session> session_;
};

TEST_F(MqlSessionTest, PaperExample1MtState) {
  // Ch. 4: SELECT ALL FROM mt_state(state-area-edge-point);
  auto result =
      session_->Execute("SELECT ALL FROM mt_state(state-area-edge-point);");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->kind, QueryResult::Kind::kMolecules);
  EXPECT_EQ(result->molecules->size(), 10u);
  EXPECT_EQ(result->molecules->name(), "mt_state");
  EXPECT_EQ(result->molecules->description().ToString(),
            "state-area-edge-point");
}

TEST_F(MqlSessionTest, PaperExample2PointNeighborhood) {
  // Ch. 4: SELECT ALL FROM point-edge-(area-state,net-river)
  //        WHERE point.name = 'pn';
  auto result = session_->Execute(
      "SELECT ALL FROM point-edge-(area-state,net-river) "
      "WHERE point.name = 'pn';");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->molecules->size(), 1u);
  const Molecule& m = result->molecules->molecules()[0];
  EXPECT_EQ(m.root(), ids_.points["pn"]);
  // The molecule reaches SP, MS, MG, GO and the river Parana (Fig. 2).
  size_t state_idx = *result->molecules->description().NodeIndex("state");
  EXPECT_EQ(m.AtomsOf(state_idx).size(), 4u);
  size_t river_idx = *result->molecules->description().NodeIndex("river");
  ASSERT_EQ(m.AtomsOf(river_idx).size(), 1u);
  EXPECT_EQ(m.AtomsOf(river_idx)[0], ids_.rivers["Parana"]);
}

TEST_F(MqlSessionTest, RegisteredMoleculeTypesAreReusable) {
  ASSERT_TRUE(
      session_->Execute("SELECT ALL FROM mt_state(state-area-edge-point);")
          .ok());
  EXPECT_TRUE(session_->HasRegisteredMoleculeType("mt_state"));
  auto result = session_->Execute(
      "SELECT ALL FROM mt_state WHERE state.hectare > 1000;");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(RootNames(*result), (std::set<std::string>{"BA", "MS", "RS"}));
}

TEST_F(MqlSessionTest, SingleAtomTypeQuery) {
  auto result =
      session_->Execute("SELECT ALL FROM state WHERE hectare >= 1000;");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(RootNames(*result), (std::set<std::string>{"BA", "MS", "SP", "RS"}));
}

TEST_F(MqlSessionTest, ProjectionSelectsSubtreeWithAncestors) {
  // Selecting 'state' keeps the root path point-edge-area-state and drops
  // the net-river branch.
  auto result = session_->Execute(
      "SELECT state FROM point-edge-(area-state,net-river) "
      "WHERE point.name = 'pn';");
  ASSERT_TRUE(result.ok()) << result.status();
  const MoleculeDescription& md = result->molecules->description();
  EXPECT_EQ(md.nodes().size(), 4u);
  EXPECT_TRUE(md.HasLabel("state"));
  EXPECT_FALSE(md.HasLabel("river"));
  EXPECT_EQ(md.root_label(), "point");
}

TEST_F(MqlSessionTest, ProjectionNarrowsAttributes) {
  auto result = session_->Execute(
      "SELECT state.name, point FROM mt2(state-area-edge-point);");
  ASSERT_TRUE(result.ok()) << result.status();
  const MoleculeDescription& md = result->molecules->description();
  size_t state_idx = *md.NodeIndex("state");
  ASSERT_TRUE(md.nodes()[state_idx].attributes.has_value());
  EXPECT_EQ(*md.nodes()[state_idx].attributes,
            std::vector<std::string>{"name"});
  size_t point_idx = *md.NodeIndex("point");
  EXPECT_FALSE(md.nodes()[point_idx].attributes.has_value());
}

TEST_F(MqlSessionTest, ExplicitLinkNamesInStructures) {
  auto result = session_->Execute(
      "SELECT ALL FROM state-[state-area]-area-[area-edge]-edge;");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->molecules->size(), 10u);
}

TEST_F(MqlSessionTest, AmbiguousImplicitLinkIsRejected) {
  ASSERT_TRUE(db_.DefineLinkType("state-area-2", "state", "area").ok());
  auto result = session_->Execute("SELECT ALL FROM state-area;");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Naming the link resolves it.
  EXPECT_TRUE(session_->Execute("SELECT ALL FROM state-[state-area]-area;").ok());
}

TEST_F(MqlSessionTest, DdlDmlRoundTrip) {
  Database db("SCRATCH");
  Session session(&db);
  auto results = session.ExecuteScript(
      "CREATE ATOM TYPE part (name STRING, cost INT64);"
      "CREATE LINK TYPE contains (part, part);"
      "INSERT INTO part VALUES ('car', 20000), ('engine', 5000), ('bolt', 1);"
      "INSERT LINK contains FROM (name = 'car') TO (name = 'engine');"
      "INSERT LINK contains FROM (name = 'engine') TO (name = 'bolt');");
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_EQ(results->size(), 5u);
  EXPECT_EQ((*results)[2].affected, 3u);
  EXPECT_EQ((*results)[3].affected, 1u);

  auto query = session.Execute("SELECT ALL FROM part-[contains*];");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->kind, QueryResult::Kind::kRecursive);
  EXPECT_EQ(query->recursive.size(), 3u);

  auto del = session.Execute("DELETE FROM part WHERE name = 'engine';");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->affected, 1u);
  // Referential integrity: both contains links died with engine.
  EXPECT_EQ((*db.GetLinkType("contains"))->occurrence().size(), 0u);
}

TEST_F(MqlSessionTest, RecursiveQueryOverBom) {
  Database db("BOM");
  auto ids = workload::BuildCarBom(db);
  ASSERT_TRUE(ids.ok());
  Session session(&db);

  // Parts explosion of the car.
  auto result = session.Execute(
      "SELECT ALL FROM part-[composition*] WHERE root.name = 'car';");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->recursive.size(), 1u);
  EXPECT_EQ(result->recursive[0].atom_count(), 5u);

  // Where-used implosion of the bolt ('~' flips the traversal).
  auto implosion = session.Execute(
      "SELECT ALL FROM part-[composition~*] WHERE root.name = 'bolt';");
  ASSERT_TRUE(implosion.ok()) << implosion.status();
  ASSERT_EQ(implosion->recursive.size(), 1u);
  EXPECT_TRUE(implosion->recursive[0].Contains((*ids)["car"]));

  // Depth-bounded.
  auto bounded = session.Execute(
      "SELECT ALL FROM part-[composition*1] WHERE root.name = 'car';");
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  EXPECT_EQ(bounded->recursive[0].atom_count(), 3u);

  // Existential member predicate: all parts whose explosion contains a
  // bolt.
  auto with_bolt = session.Execute(
      "SELECT ALL FROM part-[composition*] WHERE part.name = 'bolt';");
  ASSERT_TRUE(with_bolt.ok()) << with_bolt.status();
  EXPECT_EQ(with_bolt->recursive.size(), 5u);  // every part reaches a bolt
}

TEST_F(MqlSessionTest, SessionErrors) {
  EXPECT_FALSE(session_->Execute("SELECT ALL FROM bogus;").ok());
  EXPECT_FALSE(session_->Execute("SELECT ALL FROM state-river;").ok());
  EXPECT_FALSE(
      session_->Execute("SELECT ALL FROM mt_state(state-area) WHERE x = 1;")
          .ok());
  EXPECT_FALSE(
      session_->Execute("SELECT bogus FROM mtx(state-area-edge-point);").ok());
  EXPECT_FALSE(session_->Execute("INSERT INTO state VALUES (1, 'x');").ok());
  // Recursive structures reject extra projections.
  Database db("BOM");
  ASSERT_TRUE(workload::BuildCarBom(db).ok());
  Session session(&db);
  EXPECT_FALSE(
      session.Execute("SELECT part FROM part-[composition*];").ok());
}

TEST_F(MqlSessionTest, UpdateStatement) {
  auto result = session_->Execute(
      "UPDATE state SET hectare = hectare + 100 WHERE name = 'SP';");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->affected, 1u);
  auto v = db_.GetAttribute("state", ids_.states["SP"], "hectare");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 1100);

  // Unconditional update touches every atom.
  auto all = session_->Execute("UPDATE state SET hectare = 0;");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->affected, 10u);

  // Errors: unknown attribute, wrong qualifier, type mismatch at write.
  EXPECT_FALSE(session_->Execute("UPDATE state SET bogus = 1;").ok());
  EXPECT_FALSE(
      session_->Execute("UPDATE state SET hectare = river.length;").ok());
  EXPECT_FALSE(session_->Execute("UPDATE state SET hectare = 'x';").ok());
}

TEST_F(MqlSessionTest, UpdateKeepsIndexesConsistent) {
  ASSERT_TRUE(db_.CreateIndex("state", "hectare").ok());
  ASSERT_TRUE(session_
                  ->Execute("UPDATE state SET hectare = 7777 "
                            "WHERE name = 'MG';")
                  .ok());
  auto hits = db_.LookupByAttribute("state", "hectare", Value(int64_t{7777}));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], ids_.states["MG"]);
  EXPECT_TRUE(db_.CheckConsistency().ok());
}

TEST_F(MqlSessionTest, ExplainShowsAlgebraTranslation) {
  auto plan = session_->Execute(
      "EXPLAIN SELECT state.name FROM mt_state(state-area-edge-point) "
      "WHERE point.name = 'pn';");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->message.find("a[mt_state"), std::string::npos);
  EXPECT_NE(plan->message.find("Sigma[(point.name = 'pn')]"),
            std::string::npos);
  // Selecting only the root keeps just the root node (ancestors = none).
  EXPECT_NE(plan->message.find("Pi[{state(name)}]"), std::string::npos)
      << plan->message;
  // EXPLAIN does not register or execute anything.
  EXPECT_FALSE(session_->HasRegisteredMoleculeType("mt_state"));
}

TEST_F(MqlSessionTest, ExplainRecursive) {
  Database db("BOM");
  ASSERT_TRUE(workload::BuildCarBom(db).ok());
  Session session(&db);
  auto plan = session.Execute(
      "EXPLAIN SELECT ALL FROM part-[composition~*3] "
      "WHERE root.name = 'bolt';");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->message.find("closure[part, composition, backward, "
                               "depth<=3]"),
            std::string::npos)
      << plan->message;
}

TEST_F(MqlSessionTest, FlatSelectMatchesAtomAlgebra) {
  // Fig. 3 degeneration through the language: a single-node SELECT behaves
  // like relational σ.
  auto via_mql =
      session_->Execute("SELECT ALL FROM state WHERE hectare > 1000;");
  ASSERT_TRUE(via_mql.ok());
  auto via_algebra = mad::algebra::Restrict(
      db_, "state",
      mad::expr::Gt(mad::expr::Attr("hectare"), mad::expr::Lit(int64_t{1000})),
      "sigma_result");
  ASSERT_TRUE(via_algebra.ok());
  EXPECT_EQ(via_mql->molecules->size(),
            (*db_.GetAtomType("sigma_result"))->occurrence().size());
}

}  // namespace
}  // namespace mql
}  // namespace mad
