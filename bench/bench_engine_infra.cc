// ENGINE-INFRA: costs of the supporting machinery — serialization round
// trips, database cloning, occurrence statistics, the consistency audit,
// and cardinality-checked link insertion.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "molecule/derivation.h"
#include "molecule/statistics.h"
#include "storage/serializer.h"
#include "workload/geo.h"

namespace {

const bool kHeaderPrinted = [] {
  std::cout << "==== ENGINE-INFRA: serializer / clone / statistics / "
               "consistency audit ====\n\n";
  return true;
}();

struct InfraFixture {
  std::unique_ptr<mad::Database> db;
  int64_t states = -1;

  static InfraFixture& Get(benchmark::State& state) {
    static InfraFixture f;
    if (f.db == nullptr || f.states != state.range(0)) {
      f.states = state.range(0);
      f.db = std::make_unique<mad::Database>("SCALED");
      mad::workload::GeoScale scale;
      scale.states = static_cast<int>(f.states);
      scale.rivers = scale.states / 5 + 1;
      auto stats = mad::workload::GenerateScaledGeo(*f.db, scale);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        f.db.reset();
      }
    }
    return f;
  }
};

void BM_Serialize(benchmark::State& state) {
  auto& f = InfraFixture::Get(state);
  if (f.db == nullptr) return;
  size_t bytes = 0;
  for (auto _ : state) {
    auto text = mad::SerializeDatabase(*f.db);
    if (!text.ok()) {
      state.SkipWithError(text.status().ToString().c_str());
      return;
    }
    bytes = text->size();
    benchmark::DoNotOptimize(text->data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Serialize)->Arg(50)->Arg(200);

void BM_Deserialize(benchmark::State& state) {
  auto& f = InfraFixture::Get(state);
  if (f.db == nullptr) return;
  auto text = mad::SerializeDatabase(*f.db);
  if (!text.ok()) {
    state.SkipWithError("serialize failed");
    return;
  }
  for (auto _ : state) {
    auto restored = mad::DeserializeDatabase(*text);
    if (!restored.ok()) {
      state.SkipWithError(restored.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&restored);
  }
}
BENCHMARK(BM_Deserialize)->Arg(50)->Arg(200);

void BM_Clone(benchmark::State& state) {
  auto& f = InfraFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto clone = mad::CloneDatabase(*f.db);
    benchmark::DoNotOptimize(&clone);
  }
}
BENCHMARK(BM_Clone)->Arg(50)->Arg(200);

void BM_ConsistencyAudit(benchmark::State& state) {
  auto& f = InfraFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto s = f.db->CheckConsistency();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_ConsistencyAudit)->Arg(50)->Arg(200);

void BM_MoleculeTypeStatistics(benchmark::State& state) {
  auto& f = InfraFixture::Get(state);
  if (f.db == nullptr) return;
  auto md = mad::MoleculeDescription::CreateFromTypes(
      *f.db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  if (!md.ok()) {
    state.SkipWithError(md.status().ToString().c_str());
    return;
  }
  auto mt = mad::DefineMoleculeType(*f.db, "mt", *md);
  if (!mt.ok()) {
    state.SkipWithError(mt.status().ToString().c_str());
    return;
  }
  double sharing = 0.0;
  for (auto _ : state) {
    mad::MoleculeTypeStats stats = mad::ComputeMoleculeTypeStats(*mt);
    sharing = stats.sharing_factor();
    benchmark::DoNotOptimize(&stats);
  }
  state.counters["sharing_factor"] = sharing;
}
BENCHMARK(BM_MoleculeTypeStatistics)->Arg(50)->Arg(200);

void BM_CardinalityCheckedInsert(benchmark::State& state) {
  // 1:1-checked insert+erase vs the unrestricted n:m path measured in
  // bench_fig4 (BM_ReferentialIntegrityInsertLink).
  mad::Database db("CARD");
  mad::Schema s;
  auto st = s.AddAttribute("name", mad::DataType::kString);
  benchmark::DoNotOptimize(&st);
  st = db.DefineAtomType("a", s);
  st = db.DefineAtomType("b", s);
  st = db.DefineLinkType("l", "a", "b", mad::LinkCardinality::kOneToOne);
  auto a = db.InsertAtom("a", {mad::Value("a1")});
  auto b = db.InsertAtom("b", {mad::Value("b1")});
  if (!a.ok() || !b.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto s1 = db.InsertLink("l", *a, *b);
    benchmark::DoNotOptimize(&s1);
    auto s2 = db.EraseLink("l", *a, *b);
    benchmark::DoNotOptimize(&s2);
  }
}
BENCHMARK(BM_CardinalityCheckedInsert);

}  // namespace
