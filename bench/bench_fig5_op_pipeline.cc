// FIG5: the diagrammatic definition of molecule-type operations (Figure 5)
// as measurable stages — every operation is (1) op-specific actions,
// (2) propagation of the result set into the database, (3) molecule-type
// definition over the enlarged database. The benchmark times each stage of
// the molecule-type restriction Σ separately and end to end, so the cost
// structure of the paper's operator recipe becomes visible.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "expr/expr.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "molecule/propagation.h"
#include "workload/geo.h"

namespace {

namespace e = mad::expr;

const bool kFigurePrinted = [] {
  std::cout
      << "==== FIG5: Figure 5 — staged definition of molecule-type "
         "operations ====\n"
         "  mt --(1) op-specific actions--> rst --(2) prop--> DB' --(3) "
         "molecule-type definition a--> mt'\n\n";
  return true;
}();

struct PipelineFixtureState {
  std::unique_ptr<mad::Database> db;
  std::unique_ptr<mad::MoleculeType> mt;
  int64_t states = -1;
};

PipelineFixtureState& Fixture(benchmark::State& state) {
  static PipelineFixtureState fs;
  if (fs.db == nullptr || fs.states != state.range(0)) {
    fs.states = state.range(0);
    fs.db = std::make_unique<mad::Database>("SCALED");
    mad::workload::GeoScale scale;
    scale.states = static_cast<int>(fs.states);
    auto stats = mad::workload::GenerateScaledGeo(*fs.db, scale);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return fs;
    }
    auto md = mad::MoleculeDescription::CreateFromTypes(
        *fs.db, {"state", "area", "edge", "point"},
        {{"state-area", "state", "area", false},
         {"area-edge", "area", "edge", false},
         {"edge-point", "edge", "point", false}});
    if (!md.ok()) {
      state.SkipWithError(md.status().ToString().c_str());
      return fs;
    }
    auto mt = mad::DefineMoleculeType(*fs.db, "mt_state", *md);
    if (!mt.ok()) {
      state.SkipWithError(mt.status().ToString().c_str());
      return fs;
    }
    fs.mt = std::make_unique<mad::MoleculeType>(*std::move(mt));
  }
  return fs;
}

e::ExprPtr Predicate() {
  return e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000}));
}

// Stage 0 (the operand): molecule-type definition a itself.
void BM_Stage_Definition(benchmark::State& state) {
  auto& fs = Fixture(state);
  if (fs.mt == nullptr) return;
  for (auto _ : state) {
    auto mt = mad::DefineMoleculeType(*fs.db, "mt", fs.mt->description());
    benchmark::DoNotOptimize(&mt);
  }
}
BENCHMARK(BM_Stage_Definition)->Arg(20)->Arg(100);

// Stage 1: the op-specific action of Σ — qualification over the set.
void BM_Stage_OpSpecificRestrict(benchmark::State& state) {
  auto& fs = Fixture(state);
  if (fs.mt == nullptr) return;
  auto pred = Predicate();
  for (auto _ : state) {
    auto rst = mad::RestrictMolecules(*fs.db, *fs.mt, pred, "rst");
    benchmark::DoNotOptimize(&rst);
  }
}
BENCHMARK(BM_Stage_OpSpecificRestrict)->Arg(20)->Arg(100);

// Stage 2: prop — materialising the result set into the database.
void BM_Stage_Propagation(benchmark::State& state) {
  auto& fs = Fixture(state);
  if (fs.mt == nullptr) return;
  auto rst = mad::RestrictMolecules(*fs.db, *fs.mt, Predicate(), "rst");
  if (!rst.ok()) {
    state.SkipWithError(rst.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto prop = mad::PropagateMoleculeType(*fs.db, *rst, "bench_prop");
    benchmark::DoNotOptimize(&prop);
    state.PauseTiming();
    if (prop.ok()) {
      // Remove the propagated types again to keep the fixture stable.
      for (const mad::MoleculeNode& node : prop->description().nodes()) {
        auto s = fs.db->DropAtomType(node.type_name);
        benchmark::DoNotOptimize(&s);
      }
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Stage_Propagation)->Arg(20)->Arg(100);

// Stage 3: re-definition over the enlarged database (Theorem 2's a).
void BM_Stage_Redefinition(benchmark::State& state) {
  auto& fs = Fixture(state);
  if (fs.mt == nullptr) return;
  auto rst = mad::RestrictMolecules(*fs.db, *fs.mt, Predicate(), "rst");
  if (!rst.ok()) {
    state.SkipWithError(rst.status().ToString().c_str());
    return;
  }
  auto prop = mad::PropagateMoleculeType(*fs.db, *rst, "stage3_prop");
  if (!prop.ok()) {
    state.SkipWithError(prop.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto mv = mad::DeriveMolecules(*fs.db, prop->description());
    benchmark::DoNotOptimize(&mv);
  }
  // Leave the propagated types in place: the fixture is rebuilt per Arg.
}
BENCHMARK(BM_Stage_Redefinition)->Arg(20)->Arg(100);

// End to end: Σ with full propagation.
void BM_FullPipeline(benchmark::State& state) {
  auto& fs = Fixture(state);
  if (fs.mt == nullptr) return;
  auto pred = Predicate();
  int run = 0;
  for (auto _ : state) {
    auto rst = mad::RestrictMolecules(*fs.db, *fs.mt, pred, "rst");
    if (!rst.ok()) {
      state.SkipWithError(rst.status().ToString().c_str());
      return;
    }
    auto prop = mad::PropagateMoleculeType(*fs.db, *rst,
                                           "full" + std::to_string(++run));
    benchmark::DoNotOptimize(&prop);
    state.PauseTiming();
    if (prop.ok()) {
      for (const mad::MoleculeNode& node : prop->description().nodes()) {
        auto s = fs.db->DropAtomType(node.type_name);
        benchmark::DoNotOptimize(&s);
      }
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FullPipeline)->Arg(20)->Arg(100);

}  // namespace
