// EX-ALG1: the Ch. 3.1 atom-type algebra example — border = x(area, edge)
// followed by σ[hectare > 1000](border) — timed on the Figure-4 data and on
// scaled networks, with and without link inheritance (the MAD-specific
// cost that keeps results derivable).

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "algebra/atom_algebra.h"
#include "expr/expr.h"
#include "text/printer.h"
#include "workload/geo.h"

namespace {

namespace e = mad::expr;

const bool kExamplePrinted = [] {
  mad::Database db("GEO_DB");
  auto ids = mad::workload::BuildFigure4GeoDatabase(db);
  if (!ids.ok()) return false;
  std::cout << "==== EX-ALG1: Ch. 3.1 — x(area, edge) = border; "
               "sigma[hectare > 1000](border) ====\n";
  auto a = mad::algebra::Rename(db, "area", {{"name", "aname"}}, "area_r");
  auto b = mad::algebra::Rename(db, "edge", {{"name", "ename"}}, "edge_r");
  if (!a.ok() || !b.ok()) return false;
  auto border = mad::algebra::CartesianProduct(db, "area_r", "edge_r", "border");
  if (!border.ok()) return false;
  auto big = mad::algebra::Restrict(
      db, "border", e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})),
      "big_border");
  if (!big.ok()) return false;
  std::cout << "border: "
            << (*db.GetAtomType("border"))->occurrence().size()
            << " atoms, schema "
            << (*db.GetAtomType("border"))->description().ToString() << "\n";
  std::cout << "sigma[hectare>1000](border): "
            << (*db.GetAtomType("big_border"))->occurrence().size()
            << " atoms; inherited link types on border: "
            << border->inherited_link_types.size() << "\n\n";
  return true;
}();

struct AlgebraFixture {
  std::unique_ptr<mad::Database> db;
  int64_t states = -1;

  static AlgebraFixture& Get(benchmark::State& state) {
    static AlgebraFixture f;
    if (f.db == nullptr || f.states != state.range(0)) {
      f.states = state.range(0);
      f.db = std::make_unique<mad::Database>("SCALED");
      mad::workload::GeoScale scale;
      scale.states = static_cast<int>(f.states);
      scale.edges_per_area = 4;
      auto stats = mad::workload::GenerateScaledGeo(*f.db, scale);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        return f;
      }
      auto a = mad::algebra::Rename(*f.db, "area", {{"name", "aname"}},
                                    "area_r");
      auto b = mad::algebra::Rename(*f.db, "edge", {{"name", "ename"}},
                                    "edge_r");
      if (!a.ok() || !b.ok()) {
        state.SkipWithError("rename failed");
      }
    }
    return f;
  }
};

void BM_BorderProductWithInheritance(benchmark::State& state) {
  auto& f = AlgebraFixture::Get(state);
  if (f.db == nullptr) return;
  size_t atoms = 0;
  for (auto _ : state) {
    auto border = mad::algebra::CartesianProduct(*f.db, "area_r", "edge_r");
    if (!border.ok()) {
      state.SkipWithError(border.status().ToString().c_str());
      return;
    }
    atoms = (*f.db->GetAtomType(border->atom_type))->occurrence().size();
    state.PauseTiming();
    auto s = f.db->DropAtomType(border->atom_type);
    benchmark::DoNotOptimize(&s);
    state.ResumeTiming();
  }
  state.counters["border_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_BorderProductWithInheritance)->Arg(5)->Arg(15);

void BM_BorderProductNoInheritance(benchmark::State& state) {
  auto& f = AlgebraFixture::Get(state);
  if (f.db == nullptr) return;
  mad::algebra::AlgebraOptions options;
  options.inherit_links = false;
  for (auto _ : state) {
    auto border =
        mad::algebra::CartesianProduct(*f.db, "area_r", "edge_r", "", options);
    if (!border.ok()) {
      state.SkipWithError(border.status().ToString().c_str());
      return;
    }
    state.PauseTiming();
    auto s = f.db->DropAtomType(border->atom_type);
    benchmark::DoNotOptimize(&s);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_BorderProductNoInheritance)->Arg(5)->Arg(15);

void BM_RestrictBorder(benchmark::State& state) {
  auto& f = AlgebraFixture::Get(state);
  if (f.db == nullptr) return;
  if (!f.db->HasAtomType("border_fixed")) {
    mad::algebra::AlgebraOptions options;
    options.inherit_links = false;
    auto border = mad::algebra::CartesianProduct(*f.db, "area_r", "edge_r",
                                                 "border_fixed", options);
    if (!border.ok()) {
      state.SkipWithError(border.status().ToString().c_str());
      return;
    }
  }
  auto pred = e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000}));
  mad::algebra::AlgebraOptions options;
  options.inherit_links = false;
  for (auto _ : state) {
    auto big = mad::algebra::Restrict(*f.db, "border_fixed", pred, "", options);
    if (!big.ok()) {
      state.SkipWithError(big.status().ToString().c_str());
      return;
    }
    state.PauseTiming();
    auto s = f.db->DropAtomType(big->atom_type);
    benchmark::DoNotOptimize(&s);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RestrictBorder)->Arg(5)->Arg(15);

void BM_ChainedRestrictions(benchmark::State& state) {
  // Theorem-1 closure exercised: σ ∘ σ ∘ π chains.
  auto& f = AlgebraFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto s1 = mad::algebra::Restrict(
        *f.db, "state", e::Gt(e::Attr("hectare"), e::Lit(int64_t{500})));
    if (!s1.ok()) {
      state.SkipWithError("restrict failed");
      return;
    }
    auto s2 = mad::algebra::Restrict(
        *f.db, s1->atom_type,
        e::Lt(e::Attr("hectare"), e::Lit(int64_t{1500})));
    auto s3 = s2.ok() ? mad::algebra::Project(*f.db, s2->atom_type, {"name"})
                      : s2;
    benchmark::DoNotOptimize(&s3);
    state.PauseTiming();
    if (s3.ok()) {
      auto st = f.db->DropAtomType(s3->atom_type);
      benchmark::DoNotOptimize(&st);
    }
    if (s2.ok()) {
      auto st = f.db->DropAtomType(s2->atom_type);
      benchmark::DoNotOptimize(&st);
    }
    auto st = f.db->DropAtomType(s1->atom_type);
    benchmark::DoNotOptimize(&st);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ChainedRestrictions)->Arg(50)->Arg(200);

}  // namespace
