// PERF-NM: the paper's motivating performance claim (Ch. 2): traversing
// n:m relationships through direct, symmetric links versus through the
// auxiliary relations a relational transformation needs. The workload asks,
// for every area, for its border edges and their points — a two-step n:m
// walk. MAD answers with one molecule derivation; the relational side needs
// a four-way join chain through two auxiliary relations. Expected shape:
// MAD wins, and the gap widens with the sharing degree and the network
// size (the join materialises ever larger intermediates).

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "molecule/derivation.h"
#include "relational/bridge.h"
#include "relational/rel_algebra.h"
#include "workload/geo.h"

namespace {

struct NmFixture {
  std::unique_ptr<mad::Database> db;
  std::unique_ptr<mad::rel::RelationalDatabase> rdb;
  std::unique_ptr<mad::MoleculeDescription> md;
  int64_t states = -1;

  static NmFixture& Get(benchmark::State& state) {
    static NmFixture f;
    if (f.db == nullptr || f.states != state.range(0)) {
      f.states = state.range(0);
      f.db = std::make_unique<mad::Database>("SCALED");
      mad::workload::GeoScale scale;
      scale.states = static_cast<int>(f.states);
      scale.rivers = scale.states / 5 + 1;
      scale.shared_edge_fraction = 0.6;
      auto stats = mad::workload::GenerateScaledGeo(*f.db, scale);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        return f;
      }
      auto rdb = mad::rel::TransformToRelational(*f.db);
      if (!rdb.ok()) {
        state.SkipWithError(rdb.status().ToString().c_str());
        return f;
      }
      f.rdb = std::make_unique<mad::rel::RelationalDatabase>(*std::move(rdb));
      auto md = mad::MoleculeDescription::CreateFromTypes(
          *f.db, {"area", "edge", "point"},
          {{"area-edge", "area", "edge", false},
           {"edge-point", "edge", "point", false}});
      if (!md.ok()) {
        state.SkipWithError(md.status().ToString().c_str());
        return f;
      }
      f.md = std::make_unique<mad::MoleculeDescription>(*std::move(md));
    }
    return f;
  }
};

void BM_MadNmWalk(benchmark::State& state) {
  auto& f = NmFixture::Get(state);
  if (f.md == nullptr) return;
  size_t atoms = 0;
  for (auto _ : state) {
    auto mv = mad::DeriveMolecules(*f.db, *f.md);
    if (!mv.ok()) {
      state.SkipWithError(mv.status().ToString().c_str());
      return;
    }
    atoms = 0;
    for (const mad::Molecule& m : *mv) atoms += m.atom_count();
    benchmark::DoNotOptimize(&mv);
  }
  state.counters["result_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_MadNmWalk)->Arg(10)->Arg(50)->Arg(200);

void BM_MadNmWalkParallel(benchmark::State& state) {
  // Same walk, explicit thread count (range(1)); results are bit-identical
  // at every setting, so only the wall time may move.
  auto& f = NmFixture::Get(state);
  if (f.md == nullptr) return;
  mad::DerivationOptions opts{static_cast<unsigned>(state.range(1))};
  for (auto _ : state) {
    auto mv = mad::DeriveMolecules(*f.db, *f.md, opts);
    if (!mv.ok()) {
      state.SkipWithError(mv.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&mv);
  }
}
BENCHMARK(BM_MadNmWalkParallel)
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({200, 1})
    ->Args({200, 2})
    ->Args({200, 4});

void BM_MadNmWalkSnapshotReuse(benchmark::State& state) {
  // Amortises the frozen-snapshot build across derivations — the repeated-
  // query shape (the MQL session reuses one engine the same way).
  auto& f = NmFixture::Get(state);
  if (f.md == nullptr) return;
  auto engine = mad::DerivationEngine::Create(
      *f.db, *f.md,
      mad::DerivationOptions{static_cast<unsigned>(state.range(1))});
  if (!engine.ok()) {
    state.SkipWithError(engine.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto mv = engine->DeriveAll();
    if (!mv.ok()) {
      state.SkipWithError(mv.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&mv);
  }
}
BENCHMARK(BM_MadNmWalkSnapshotReuse)
    ->Args({200, 1})
    ->Args({200, 2})
    ->Args({200, 4});

void BM_RelationalNmWalk(benchmark::State& state) {
  auto& f = NmFixture::Get(state);
  if (f.rdb == nullptr) return;
  const mad::rel::Relation* area = *f.rdb->Get("area");
  const mad::rel::Relation* area_edge = *f.rdb->Get("area-edge");
  const mad::rel::Relation* edge_point = *f.rdb->Get("edge-point");
  auto edge = mad::rel::Rename(**f.rdb->Get("edge"),
                               {{"_id", "_eid"}, {"name", "ename"}});
  auto point = mad::rel::Rename(
      **f.rdb->Get("point"),
      {{"_id", "_pid"}, {"name", "pname"}, {"x", "px"}, {"y", "py"}});
  auto ep = mad::rel::Rename(*edge_point, {{"_from", "_efrom"},
                                           {"_to", "_eto"}});
  if (!edge.ok() || !point.ok() || !ep.ok()) {
    state.SkipWithError("rename failed");
    return;
  }
  size_t rows = 0;
  for (auto _ : state) {
    // area |x| area-edge |x| edge |x| edge-point |x| point.
    auto j1 = mad::rel::EquiJoin(*area, "_id", *area_edge, "_from");
    if (!j1.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    auto j2 = mad::rel::EquiJoin(*j1, "_to", *edge, "_eid");
    auto j3 = j2.ok() ? mad::rel::EquiJoin(*j2, "_eid", *ep, "_efrom") : j2;
    auto j4 = j3.ok() ? mad::rel::EquiJoin(*j3, "_eto", *point, "_pid") : j3;
    if (!j4.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    rows = j4->size();
    benchmark::DoNotOptimize(&j4);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_RelationalNmWalk)->Arg(10)->Arg(50)->Arg(200);

void BM_MadSymmetricBackWalk(benchmark::State& state) {
  // The reverse direction (point -> edge -> area) needs no new schema on
  // the MAD side: the same links are traversed backward.
  auto& f = NmFixture::Get(state);
  if (f.db == nullptr) return;
  auto md = mad::MoleculeDescription::CreateFromTypes(
      *f.db, {"point", "edge", "area"},
      {{"edge-point", "point", "edge", false},
       {"area-edge", "edge", "area", false}});
  if (!md.ok()) {
    state.SkipWithError(md.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto mv = mad::DeriveMolecules(*f.db, *md);
    benchmark::DoNotOptimize(&mv);
  }
}
BENCHMARK(BM_MadSymmetricBackWalk)->Arg(10)->Arg(50);

void BM_RelationalBackWalk(benchmark::State& state) {
  auto& f = NmFixture::Get(state);
  if (f.rdb == nullptr) return;
  const mad::rel::Relation* point = *f.rdb->Get("point");
  const mad::rel::Relation* edge_point = *f.rdb->Get("edge-point");
  auto area = mad::rel::Rename(
      **f.rdb->Get("area"),
      {{"_id", "_aid"}, {"name", "aname"}, {"hectare", "ahectare"}});
  auto ae = mad::rel::Rename(**f.rdb->Get("area-edge"),
                             {{"_from", "_afrom"}, {"_to", "_ato"}});
  if (!area.ok() || !ae.ok()) {
    state.SkipWithError("rename failed");
    return;
  }
  for (auto _ : state) {
    auto j1 = mad::rel::EquiJoin(*point, "_id", *edge_point, "_to");
    auto j2 = j1.ok() ? mad::rel::EquiJoin(*j1, "_from", *ae, "_ato") : j1;
    auto j3 = j2.ok() ? mad::rel::EquiJoin(*j2, "_afrom", *area, "_aid") : j2;
    if (!j3.ok()) {
      state.SkipWithError("join failed");
      return;
    }
    benchmark::DoNotOptimize(&j3);
  }
}
BENCHMARK(BM_RelationalBackWalk)->Arg(10)->Arg(50);

const bool kHeaderPrinted = [] {
  std::cout << "==== PERF-NM: n:m traversal — direct links vs auxiliary "
               "relations (Ch. 2 claim) ====\n"
               "workload: every area's border edges and their corner "
               "points; reverse walk point->area\n\n";
  return true;
}();

}  // namespace
