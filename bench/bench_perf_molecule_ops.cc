// PERF-OPS: scaling of the molecule algebra operators Σ, Π, Ω, Δ, Ψ, X and
// of the propagation function prop over scaled geographic networks.
// Expected shape: Σ is linear in the molecule count times qualification
// cost; Π is linear in retained atoms; the set operators are linear in the
// canonical-key material; X is quadratic (|mv1|·|mv2|); prop is linear in
// the distinct atoms/links of the result set.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "expr/expr.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "molecule/propagation.h"
#include "workload/geo.h"

namespace {

namespace e = mad::expr;

struct OpsFixture {
  std::unique_ptr<mad::Database> db;
  std::unique_ptr<mad::MoleculeType> mt;
  int64_t states = -1;

  static OpsFixture& Get(benchmark::State& state) {
    static OpsFixture f;
    if (f.db == nullptr || f.states != state.range(0)) {
      f.states = state.range(0);
      f.db = std::make_unique<mad::Database>("SCALED");
      mad::workload::GeoScale scale;
      scale.states = static_cast<int>(f.states);
      scale.rivers = scale.states / 5 + 1;
      auto stats = mad::workload::GenerateScaledGeo(*f.db, scale);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        f.db.reset();
        return f;
      }
      auto md = mad::MoleculeDescription::CreateFromTypes(
          *f.db, {"state", "area", "edge", "point"},
          {{"state-area", "state", "area", false},
           {"area-edge", "area", "edge", false},
           {"edge-point", "edge", "point", false}});
      if (!md.ok()) {
        state.SkipWithError(md.status().ToString().c_str());
        f.db.reset();
        return f;
      }
      auto mt = mad::DefineMoleculeType(*f.db, "mt_state", *md);
      if (!mt.ok()) {
        state.SkipWithError(mt.status().ToString().c_str());
        f.db.reset();
        return f;
      }
      f.mt = std::make_unique<mad::MoleculeType>(*std::move(mt));
    }
    return f;
  }
};

void BM_MoleculeDerivation(benchmark::State& state) {
  // The molecule-type definition operator `a` itself, at an explicit thread
  // count (range(1)); snapshot build + fan-out per iteration.
  auto& f = OpsFixture::Get(state);
  if (f.db == nullptr) return;
  mad::DerivationOptions opts{static_cast<unsigned>(state.range(1))};
  mad::DerivationStats stats;
  for (auto _ : state) {
    auto mt = mad::DefineMoleculeType(*f.db, "bench", f.mt->description(),
                                      opts, &stats);
    if (!mt.ok()) {
      state.SkipWithError(mt.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&mt);
  }
  state.counters["atoms_visited"] = static_cast<double>(stats.atoms_visited);
  state.counters["links_scanned"] = static_cast<double>(stats.links_scanned);
}
BENCHMARK(BM_MoleculeDerivation)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({400, 1})
    ->Args({400, 2})
    ->Args({400, 4});

void BM_SigmaRestrict(benchmark::State& state) {
  auto& f = OpsFixture::Get(state);
  if (f.db == nullptr) return;
  auto pred = e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000}));
  for (auto _ : state) {
    auto result = mad::RestrictMolecules(*f.db, *f.mt, pred, "sigma");
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_SigmaRestrict)->Arg(20)->Arg(100)->Arg(400);

void BM_SigmaRestrictDeepQualification(benchmark::State& state) {
  // Qualification over a leaf node: existential scan of every point group.
  auto& f = OpsFixture::Get(state);
  if (f.db == nullptr) return;
  auto pred = e::Gt(e::Attr("point", "x"), e::Lit(990.0));
  for (auto _ : state) {
    auto result = mad::RestrictMolecules(*f.db, *f.mt, pred, "sigma");
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_SigmaRestrictDeepQualification)->Arg(20)->Arg(100)->Arg(400);

void BM_PiProjection(benchmark::State& state) {
  auto& f = OpsFixture::Get(state);
  if (f.db == nullptr) return;
  mad::MoleculeProjectionSpec spec;
  spec.keep_labels = {"state", "area", "edge"};
  spec.attributes["state"] = {"name"};
  for (auto _ : state) {
    auto result = mad::ProjectMolecules(*f.db, *f.mt, spec, "pi");
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_PiProjection)->Arg(20)->Arg(100)->Arg(400);

void BM_OmegaDeltaPsi(benchmark::State& state) {
  auto& f = OpsFixture::Get(state);
  if (f.db == nullptr) return;
  auto big = mad::RestrictMolecules(
      *f.db, *f.mt, e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{800})),
      "big");
  auto small = mad::RestrictMolecules(
      *f.db, *f.mt, e::Lt(e::Attr("state", "hectare"), e::Lit(int64_t{1400})),
      "small");
  if (!big.ok() || !small.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto u = mad::UnionMolecules(*big, *small, "u");
    auto d = mad::DifferenceMolecules(*big, *small, "d");
    auto i = mad::IntersectMolecules(*big, *small, "i");
    benchmark::DoNotOptimize(&u);
    benchmark::DoNotOptimize(&d);
    benchmark::DoNotOptimize(&i);
  }
}
BENCHMARK(BM_OmegaDeltaPsi)->Arg(20)->Arg(100)->Arg(400);

void BM_CanonicalKey(benchmark::State& state) {
  // The fingerprint underlying the set operators.
  auto& f = OpsFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    size_t total = 0;
    for (const mad::Molecule& m : f.mt->molecules()) {
      total += m.CanonicalKey().size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_CanonicalKey)->Arg(20)->Arg(100);

void BM_CartesianProductX(benchmark::State& state) {
  auto& f = OpsFixture::Get(state);
  if (f.db == nullptr) return;
  // Keep operands small: X is quadratic and mutates the database.
  auto left = mad::RestrictMolecules(
      *f.db, *f.mt, e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1500})),
      "left");
  auto right = mad::RestrictMolecules(
      *f.db, *f.mt, e::Lt(e::Attr("state", "hectare"), e::Lit(int64_t{300})),
      "right");
  if (!left.ok() || !right.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  int run = 0;
  size_t pairs = 0;
  for (auto _ : state) {
    std::string name = "x" + std::to_string(++run);
    auto x = mad::CartesianProductMolecules(*f.db, *left, *right, name);
    if (!x.ok()) {
      state.SkipWithError(x.status().ToString().c_str());
      return;
    }
    pairs = x->size();
    state.PauseTiming();
    auto s = f.db->DropAtomType(name);  // pair type + links
    benchmark::DoNotOptimize(&s);
    state.ResumeTiming();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_CartesianProductX)->Arg(20)->Arg(100);

void BM_Propagation(benchmark::State& state) {
  auto& f = OpsFixture::Get(state);
  if (f.db == nullptr) return;
  auto big = mad::RestrictMolecules(
      *f.db, *f.mt, e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000})),
      "to_prop");
  if (!big.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  int run = 0;
  for (auto _ : state) {
    std::string name = "prop" + std::to_string(++run);
    auto prop = mad::PropagateMoleculeType(*f.db, *big, name);
    if (!prop.ok()) {
      state.SkipWithError(prop.status().ToString().c_str());
      return;
    }
    state.PauseTiming();
    for (const mad::MoleculeNode& node : prop->description().nodes()) {
      auto s = f.db->DropAtomType(node.type_name);
      benchmark::DoNotOptimize(&s);
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Propagation)->Arg(20)->Arg(100);

const bool kHeaderPrinted = [] {
  std::cout << "==== PERF-OPS: molecule algebra operator scaling (Σ Π Ω Δ Ψ "
               "X, prop) ====\n\n";
  return true;
}();

}  // namespace
