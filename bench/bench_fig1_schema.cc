// FIG1: regenerates Figure 1 (the geographic ER schema and its one-to-one
// MAD diagram) and measures schema construction: ER -> MAD mapping,
// ER -> relational mapping, and scaled occurrence loading.

#include <benchmark/benchmark.h>

#include <iostream>

#include "er/er_model.h"
#include "text/printer.h"
#include "workload/geo.h"

namespace {

const bool kFigurePrinted = [] {
  mad::er::ErSchema er = mad::er::Figure1ErSchema();
  std::cout << "==== FIG1: Figure 1 — sample geographic application ====\n"
            << mad::text::FormatErDiagram(er) << "\n";
  mad::Database db("GEO_DB");
  if (auto s = mad::er::MapToMad(er, db); !s.ok()) {
    std::cerr << s << "\n";
    return false;
  }
  std::cout << mad::text::FormatMadDiagram(db) << "\n";
  auto report = mad::er::CompareMappings(er);
  if (report.ok()) {
    std::cout << "schema mapping: MAD = " << report->mad_atom_types
              << " atom types + " << report->mad_link_types
              << " link types; relational = " << report->rel_relations
              << " relations (" << report->rel_auxiliary_relations
              << " auxiliary) + " << report->rel_foreign_key_columns
              << " foreign-key columns\n\n";
  }
  return true;
}();

void BM_ErToMadMapping(benchmark::State& state) {
  mad::er::ErSchema er = mad::er::Figure1ErSchema();
  for (auto _ : state) {
    mad::Database db("GEO_DB");
    benchmark::DoNotOptimize(mad::er::MapToMad(er, db));
    benchmark::DoNotOptimize(&db);
  }
}
BENCHMARK(BM_ErToMadMapping);

void BM_ErToRelationalMapping(benchmark::State& state) {
  mad::er::ErSchema er = mad::er::Figure1ErSchema();
  for (auto _ : state) {
    auto rdb = mad::er::MapToRelational(er);
    benchmark::DoNotOptimize(&rdb);
  }
}
BENCHMARK(BM_ErToRelationalMapping);

void BM_BuildFigure4Occurrence(benchmark::State& state) {
  for (auto _ : state) {
    mad::Database db("GEO_DB");
    auto ids = mad::workload::BuildFigure4GeoDatabase(db);
    benchmark::DoNotOptimize(&ids);
  }
}
BENCHMARK(BM_BuildFigure4Occurrence);

void BM_LoadScaledGeo(benchmark::State& state) {
  mad::workload::GeoScale scale;
  scale.states = static_cast<int>(state.range(0));
  scale.rivers = scale.states / 5 + 1;
  size_t atoms = 0;
  size_t links = 0;
  for (auto _ : state) {
    mad::Database db("SCALED");
    auto stats = mad::workload::GenerateScaledGeo(db, scale);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    atoms = stats->atoms;
    links = stats->links;
  }
  state.counters["atoms"] = static_cast<double>(atoms);
  state.counters["links"] = static_cast<double>(links);
}
BENCHMARK(BM_LoadScaledGeo)->Arg(10)->Arg(50)->Arg(200);

}  // namespace
