// FIG3: regenerates Figure 3 (the relational-vs-MAD concept correspondence
// table) and measures each corresponding operation pair on identical data:
// the MAD atom-type algebra against the classical relational algebra. The
// expected shape: MAD pays a link-inheritance overhead per operation (that
// is what keeps results network-connected); with inheritance disabled the
// two sides converge — the degeneration the figure describes.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "algebra/atom_algebra.h"
#include "expr/expr.h"
#include "relational/bridge.h"
#include "relational/rel_algebra.h"
#include "text/printer.h"
#include "workload/geo.h"

namespace {

namespace e = mad::expr;

const bool kFigurePrinted = [] {
  std::cout << "==== FIG3: Figure 3 — comparison of corresponding concepts "
               "====\n"
            << mad::text::FormatConceptComparison() << "\n";
  return true;
}();

/// Shared fixture: one scaled MAD database plus its relational transform.
class Corresponding : public benchmark::Fixture {
 public:
  void SetUp(::benchmark::State& state) override {
    if (db_ != nullptr && states_ == state.range(0)) return;
    states_ = state.range(0);
    db_ = std::make_unique<mad::Database>("SCALED");
    mad::workload::GeoScale scale;
    scale.states = static_cast<int>(states_);
    scale.rivers = scale.states / 5 + 1;
    auto stats = mad::workload::GenerateScaledGeo(*db_, scale);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    auto rdb = mad::rel::TransformToRelational(*db_);
    if (!rdb.ok()) {
      state.SkipWithError(rdb.status().ToString().c_str());
      return;
    }
    rdb_ = std::make_unique<mad::rel::RelationalDatabase>(*std::move(rdb));
  }

  static std::unique_ptr<mad::Database> db_;
  static std::unique_ptr<mad::rel::RelationalDatabase> rdb_;
  static int64_t states_;
};
std::unique_ptr<mad::Database> Corresponding::db_;
std::unique_ptr<mad::rel::RelationalDatabase> Corresponding::rdb_;
int64_t Corresponding::states_ = -1;

// ---- σ restriction -----------------------------------------------------------

BENCHMARK_DEFINE_F(Corresponding, MadRestrict)(benchmark::State& state) {
  auto pred = e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000}));
  for (auto _ : state) {
    auto result = mad::algebra::Restrict(*db_, "state", pred);
    benchmark::DoNotOptimize(&result);
    state.PauseTiming();
    if (result.ok()) {
      auto s = db_->DropAtomType(result->atom_type);
      benchmark::DoNotOptimize(&s);
    }
    state.ResumeTiming();
  }
}
BENCHMARK_REGISTER_F(Corresponding, MadRestrict)->Arg(50)->Arg(200);

BENCHMARK_DEFINE_F(Corresponding, MadRestrictNoInheritance)
(benchmark::State& state) {
  auto pred = e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000}));
  mad::algebra::AlgebraOptions options;
  options.inherit_links = false;
  for (auto _ : state) {
    auto result = mad::algebra::Restrict(*db_, "state", pred, "", options);
    benchmark::DoNotOptimize(&result);
    state.PauseTiming();
    if (result.ok()) {
      auto s = db_->DropAtomType(result->atom_type);
      benchmark::DoNotOptimize(&s);
    }
    state.ResumeTiming();
  }
}
BENCHMARK_REGISTER_F(Corresponding, MadRestrictNoInheritance)
    ->Arg(50)
    ->Arg(200);

BENCHMARK_DEFINE_F(Corresponding, RelRestrict)(benchmark::State& state) {
  auto pred = e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000}));
  const mad::rel::Relation* states = *rdb_->Get("state");
  for (auto _ : state) {
    auto result = mad::rel::Restrict(*states, pred);
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK_REGISTER_F(Corresponding, RelRestrict)->Arg(50)->Arg(200);

// ---- π projection ------------------------------------------------------------

BENCHMARK_DEFINE_F(Corresponding, MadProject)(benchmark::State& state) {
  for (auto _ : state) {
    auto result = mad::algebra::Project(*db_, "point", {"name"});
    benchmark::DoNotOptimize(&result);
    state.PauseTiming();
    if (result.ok()) {
      auto s = db_->DropAtomType(result->atom_type);
      benchmark::DoNotOptimize(&s);
    }
    state.ResumeTiming();
  }
}
BENCHMARK_REGISTER_F(Corresponding, MadProject)->Arg(50)->Arg(200);

BENCHMARK_DEFINE_F(Corresponding, RelProject)(benchmark::State& state) {
  const mad::rel::Relation* points = *rdb_->Get("point");
  for (auto _ : state) {
    auto result = mad::rel::Project(*points, {"name"});
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK_REGISTER_F(Corresponding, RelProject)->Arg(50)->Arg(200);

// ---- × cartesian product ------------------------------------------------------

BENCHMARK_DEFINE_F(Corresponding, MadCartesianProduct)
(benchmark::State& state) {
  // state × river after disjoint renaming (kept out of the timed region).
  if (!db_->HasAtomType("river_r")) {
    auto r1 = mad::algebra::Rename(
        *db_, "river", {{"name", "rname"}, {"length", "rlength"}}, "river_r");
    if (!r1.ok()) {
      state.SkipWithError(r1.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto result = mad::algebra::CartesianProduct(*db_, "state", "river_r");
    benchmark::DoNotOptimize(&result);
    state.PauseTiming();
    if (result.ok()) {
      auto s = db_->DropAtomType(result->atom_type);
      benchmark::DoNotOptimize(&s);
    }
    state.ResumeTiming();
  }
}
BENCHMARK_REGISTER_F(Corresponding, MadCartesianProduct)->Arg(50);

BENCHMARK_DEFINE_F(Corresponding, RelCartesianProduct)
(benchmark::State& state) {
  const mad::rel::Relation* states = *rdb_->Get("state");
  auto rivers =
      mad::rel::Rename(**rdb_->Get("river"),
                       {{"_id", "_rid"}, {"name", "rname"},
                        {"length", "rlength"}});
  if (!rivers.ok()) {
    state.SkipWithError(rivers.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = mad::rel::CartesianProduct(*states, *rivers);
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK_REGISTER_F(Corresponding, RelCartesianProduct)->Arg(50);

// ---- ω / δ ---------------------------------------------------------------------

BENCHMARK_DEFINE_F(Corresponding, MadUnionDifference)(benchmark::State& state) {
  // Idempotent setup: the benchmark function may be re-entered for timing
  // calibration.
  if (!db_->HasAtomType("u_big")) {
    auto big = mad::algebra::Restrict(
        *db_, "state", e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})),
        "u_big");
    auto small = mad::algebra::Restrict(
        *db_, "state", e::Le(e::Attr("hectare"), e::Lit(int64_t{400})),
        "u_small");
    if (!big.ok() || !small.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
  }
  mad::algebra::AlgebraOptions options;
  options.inherit_links = false;
  for (auto _ : state) {
    auto u = mad::algebra::Union(*db_, "u_big", "u_small", "", options);
    auto d = mad::algebra::Difference(*db_, "u_big", "u_small", "", options);
    benchmark::DoNotOptimize(&u);
    benchmark::DoNotOptimize(&d);
    state.PauseTiming();
    if (u.ok()) {
      auto s = db_->DropAtomType(u->atom_type);
      benchmark::DoNotOptimize(&s);
    }
    if (d.ok()) {
      auto s = db_->DropAtomType(d->atom_type);
      benchmark::DoNotOptimize(&s);
    }
    state.ResumeTiming();
  }
}
BENCHMARK_REGISTER_F(Corresponding, MadUnionDifference)->Arg(50);

BENCHMARK_DEFINE_F(Corresponding, RelUnionDifference)(benchmark::State& state) {
  const mad::rel::Relation* states = *rdb_->Get("state");
  auto big =
      mad::rel::Restrict(*states, e::Gt(e::Attr("hectare"), e::Lit(int64_t{1000})));
  auto small =
      mad::rel::Restrict(*states, e::Le(e::Attr("hectare"), e::Lit(int64_t{400})));
  if (!big.ok() || !small.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto u = mad::rel::Union(*big, *small);
    auto d = mad::rel::Difference(*big, *small);
    benchmark::DoNotOptimize(&u);
    benchmark::DoNotOptimize(&d);
  }
}
BENCHMARK_REGISTER_F(Corresponding, RelUnionDifference)->Arg(50);

}  // namespace
