// Shared main() for every bench_* binary. Adds a `--json <path>` flag on
// top of the stock google-benchmark flags: when given, a machine-readable
// summary of every run is written to <path> in addition to the usual
// console output, so CI and scripts can diff benchmark results without
// scraping stdout. The JSON shape is deliberately small and stable:
//
//   {"benchmark": "<binary>", "results": [
//     {"op": "<name>", "ns_per_op": <double>,
//      "iterations": <int>, "parallelism": <int>}, ...]}
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

struct JsonRow {
  std::string op;
  double ns_per_op = 0.0;
  int64_t iterations = 0;
  int64_t parallelism = 1;
};

/// Console reporter that also keeps a row per successful iteration run
/// (aggregates like mean/stddev are skipped; they would double-count).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      JsonRow row;
      row.op = run.benchmark_name();
      row.iterations = run.iterations;
      row.parallelism = run.threads;
      if (run.iterations > 0) {
        row.ns_per_op = run.real_accumulated_time /
                        static_cast<double>(run.iterations) * 1e9;
      }
      rows_.push_back(std::move(row));
    }
  }

  const std::vector<JsonRow>& rows() const { return rows_; }

 private:
  std::vector<JsonRow> rows_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteJson(const std::string& path, const std::string& binary,
               const std::vector<JsonRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\"benchmark\": \"" << JsonEscape(binary) << "\", \"results\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n  {\"op\": \"" << JsonEscape(rows[i].op)
        << "\", \"ns_per_op\": " << rows[i].ns_per_op
        << ", \"iterations\": " << rows[i].iterations
        << ", \"parallelism\": " << rows[i].parallelism << "}";
  }
  out << "\n]}\n";
  return out.good();
}

/// Strips the binary's directory prefix, leaving e.g. "bench_perf_clone".
std::string BinaryName(const char* argv0) {
  std::string name = argv0;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--json requires a path argument\n";
        return 1;
      }
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  int rc = 0;
  if (!json_path.empty()) {
    if (WriteJson(json_path, BinaryName(argv[0]), reporter.rows())) {
      std::cout << "wrote " << reporter.rows().size() << " result(s) to "
                << json_path << "\n";
    } else {
      std::cerr << "failed to write " << json_path << "\n";
      rc = 1;
    }
  }
  benchmark::Shutdown();
  return rc;
}
