// FIG4: regenerates Figure 4 (the formal specification of the geographic
// database) and measures the cost of building the specified occurrence and
// of formatting the specification.

#include <benchmark/benchmark.h>

#include <iostream>

#include "text/printer.h"
#include "workload/geo.h"

namespace {

const bool kFigurePrinted = [] {
  mad::Database db("GEO_DB");
  auto ids = mad::workload::BuildFigure4GeoDatabase(db);
  if (!ids.ok()) return false;
  std::cout << "==== FIG4: Figure 4 — formal specification of the geographic "
               "database ====\n"
            << mad::text::FormatDatabaseSpec(db) << "\n";
  return true;
}();

void BM_BuildAndSpecFigure4(benchmark::State& state) {
  for (auto _ : state) {
    mad::Database db("GEO_DB");
    auto ids = mad::workload::BuildFigure4GeoDatabase(db);
    if (!ids.ok()) {
      state.SkipWithError("fixture failed");
      return;
    }
    std::string spec = mad::text::FormatDatabaseSpec(db);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_BuildAndSpecFigure4);

void BM_FormatSpecOnly(benchmark::State& state) {
  mad::Database db("SCALED");
  mad::workload::GeoScale scale;
  scale.states = static_cast<int>(state.range(0));
  auto stats = mad::workload::GenerateScaledGeo(db, scale);
  if (!stats.ok()) {
    state.SkipWithError("fixture failed");
    return;
  }
  for (auto _ : state) {
    std::string spec = mad::text::FormatDatabaseSpec(db, 2);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_FormatSpecOnly)->Arg(10)->Arg(100);

void BM_ReferentialIntegrityInsertLink(benchmark::State& state) {
  // Link insertion includes the membership checks Fig. 4's link types rely
  // on (no dangling links, ever).
  mad::Database db("GEO_DB");
  auto ids = mad::workload::BuildFigure4GeoDatabase(db);
  if (!ids.ok()) {
    state.SkipWithError("fixture failed");
    return;
  }
  mad::AtomId a1 = ids->areas["a1"];
  mad::AtomId e1 = ids->edges["e1"];
  for (auto _ : state) {
    auto s1 = db.InsertLink("area-edge", a1, e1);
    benchmark::DoNotOptimize(&s1);
    auto s2 = db.EraseLink("area-edge", a1, e1);
    benchmark::DoNotOptimize(&s2);
  }
}
BENCHMARK(BM_ReferentialIntegrityInsertLink);

void BM_DeleteAtomCascade(benchmark::State& state) {
  // Atom deletion cascades into every touching link type.
  for (auto _ : state) {
    state.PauseTiming();
    mad::Database db("GEO_DB");
    auto ids = mad::workload::BuildFigure4GeoDatabase(db);
    if (!ids.ok()) {
      state.SkipWithError("fixture failed");
      return;
    }
    state.ResumeTiming();
    auto s = db.DeleteAtom("point", ids->points["pn"]);
    benchmark::DoNotOptimize(&s);
  }
}
BENCHMARK(BM_DeleteAtomCascade);

}  // namespace
