// PERF-REC: the Ch. 5 recursion extension — bill-of-material parts
// explosion and where-used implosion over layered BOM DAGs, swept by depth
// and fan-out, plus the cost of materialising the closure as a first-class
// link type. Expected shape: explosion cost grows with the number of links
// reached; DAG sharing keeps it well below the exponential path count.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "molecule/recursive.h"
#include "workload/bom.h"

namespace {

struct BomFixture {
  std::unique_ptr<mad::Database> db;
  mad::workload::BomStats stats;
  int64_t key = -1;

  static BomFixture& Get(benchmark::State& state, int depth, int fanout,
                         double share) {
    static BomFixture f;
    int64_t key = depth * 1000 + fanout * 10 + static_cast<int64_t>(share * 10);
    if (f.db == nullptr || f.key != key) {
      f.key = key;
      f.db = std::make_unique<mad::Database>("BOM");
      mad::workload::BomScale scale;
      scale.depth = depth;
      scale.fanout = fanout;
      scale.share_fraction = share;
      auto stats = mad::workload::GenerateBom(*f.db, scale);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        f.db.reset();
        return f;
      }
      f.stats = *stats;
    }
    return f;
  }
};

void BM_PartsExplosionByDepth(benchmark::State& state) {
  auto& f = BomFixture::Get(state, static_cast<int>(state.range(0)), 3, 0.3);
  if (f.db == nullptr) return;
  mad::RecursiveDescription rd{"part", "composition",
                               mad::LinkDirection::kForward, -1};
  size_t atoms = 0;
  for (auto _ : state) {
    auto m = mad::DeriveRecursiveMoleculeFor(*f.db, rd, f.stats.roots[0]);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    atoms = m->atom_count();
    benchmark::DoNotOptimize(&m);
  }
  state.counters["closure_atoms"] = static_cast<double>(atoms);
  state.counters["total_parts"] = static_cast<double>(f.stats.parts);
}
BENCHMARK(BM_PartsExplosionByDepth)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_PartsExplosionByFanout(benchmark::State& state) {
  auto& f = BomFixture::Get(state, 6, static_cast<int>(state.range(0)), 0.3);
  if (f.db == nullptr) return;
  mad::RecursiveDescription rd{"part", "composition",
                               mad::LinkDirection::kForward, -1};
  for (auto _ : state) {
    auto m = mad::DeriveRecursiveMoleculeFor(*f.db, rd, f.stats.roots[0]);
    benchmark::DoNotOptimize(&m);
  }
  state.counters["total_parts"] = static_cast<double>(f.stats.parts);
}
BENCHMARK(BM_PartsExplosionByFanout)->Arg(2)->Arg(3)->Arg(4);

void BM_SharingAblation(benchmark::State& state) {
  // Sharing degree sweep: higher sharing -> fewer distinct parts -> the
  // visited-set traversal converges faster (argument(0) is share * 10).
  double share = static_cast<double>(state.range(0)) / 10.0;
  auto& f = BomFixture::Get(state, 7, 3, share);
  if (f.db == nullptr) return;
  mad::RecursiveDescription rd{"part", "composition",
                               mad::LinkDirection::kForward, -1};
  size_t atoms = 0;
  for (auto _ : state) {
    auto m = mad::DeriveRecursiveMoleculeFor(*f.db, rd, f.stats.roots[0]);
    if (m.ok()) atoms = m->atom_count();
    benchmark::DoNotOptimize(&m);
  }
  state.counters["closure_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_SharingAblation)->Arg(0)->Arg(3)->Arg(6)->Arg(9);

void BM_WhereUsedImplosion(benchmark::State& state) {
  auto& f = BomFixture::Get(state, static_cast<int>(state.range(0)), 3, 0.3);
  if (f.db == nullptr) return;
  // Deepest leaf: the last inserted part.
  const mad::AtomType* part = *f.db->GetAtomType("part");
  mad::AtomId leaf = part->occurrence().atoms().back().id;
  mad::RecursiveDescription rd{"part", "composition",
                               mad::LinkDirection::kBackward, -1};
  for (auto _ : state) {
    auto m = mad::DeriveRecursiveMoleculeFor(*f.db, rd, leaf);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_WhereUsedImplosion)->Arg(6)->Arg(10);

void BM_DepthBoundedExplosion(benchmark::State& state) {
  auto& f = BomFixture::Get(state, 10, 3, 0.3);
  if (f.db == nullptr) return;
  mad::RecursiveDescription rd{"part", "composition",
                               mad::LinkDirection::kForward,
                               static_cast<int>(state.range(0))};
  for (auto _ : state) {
    auto m = mad::DeriveRecursiveMoleculeFor(*f.db, rd, f.stats.roots[0]);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_DepthBoundedExplosion)->Arg(1)->Arg(3)->Arg(5)->Arg(10);

void BM_AllExplosions(benchmark::State& state) {
  // One recursive molecule per part (the full molecule-type occurrence).
  auto& f = BomFixture::Get(state, static_cast<int>(state.range(0)), 3, 0.3);
  if (f.db == nullptr) return;
  mad::RecursiveDescription rd{"part", "composition",
                               mad::LinkDirection::kForward, -1};
  for (auto _ : state) {
    auto mv = mad::DeriveRecursiveMolecules(*f.db, rd);
    benchmark::DoNotOptimize(&mv);
  }
}
BENCHMARK(BM_AllExplosions)->Arg(4)->Arg(6)->Arg(8);

void BM_PropagateClosure(benchmark::State& state) {
  auto& f = BomFixture::Get(state, static_cast<int>(state.range(0)), 3, 0.3);
  if (f.db == nullptr) return;
  mad::RecursiveDescription rd{"part", "composition",
                               mad::LinkDirection::kForward, -1};
  int run = 0;
  size_t links = 0;
  for (auto _ : state) {
    std::string name = "closure" + std::to_string(++run);
    auto inserted = mad::PropagateClosureLinks(*f.db, rd, name);
    if (!inserted.ok()) {
      state.SkipWithError(inserted.status().ToString().c_str());
      return;
    }
    links = *inserted;
    state.PauseTiming();
    auto s = f.db->DropLinkType(name);
    benchmark::DoNotOptimize(&s);
    state.ResumeTiming();
  }
  state.counters["closure_links"] = static_cast<double>(links);
}
BENCHMARK(BM_PropagateClosure)->Arg(4)->Arg(6);

const bool kHeaderPrinted = [] {
  std::cout << "==== PERF-REC: recursive molecules (Ch. 5, [Schö89]) — BOM "
               "explosion/implosion sweeps ====\n\n";
  return true;
}();

}  // namespace
