// FIG2: regenerates Figure 2 (the molecule types 'point neighborhood' and
// 'mt_state' with their shared subobjects) and measures molecule derivation
// on the exact figure data and on scaled atom networks.

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <memory>

#include "molecule/derivation.h"
#include "text/printer.h"
#include "workload/geo.h"

namespace {

mad::MoleculeDescription MtStateDescription(const mad::Database& db) {
  auto md = mad::MoleculeDescription::CreateFromTypes(
      db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  return *md;
}

mad::MoleculeDescription PointNeighborhoodDescription(const mad::Database& db) {
  auto md = mad::MoleculeDescription::CreateFromTypes(
      db, {"point", "edge", "area", "state", "net", "river"},
      {{"edge-point", "point", "edge", false},
       {"area-edge", "edge", "area", false},
       {"state-area", "area", "state", false},
       {"net-edge", "edge", "net", false},
       {"river-net", "net", "river", false}});
  return *md;
}

const bool kFigurePrinted = [] {
  mad::Database db("GEO_DB");
  auto ids = mad::workload::BuildFigure4GeoDatabase(db);
  if (!ids.ok()) return false;

  std::cout << "==== FIG2: Figure 2 — some complex objects ====\n";
  auto pn = mad::DefineMoleculeType(db, "point neighborhood",
                                    PointNeighborhoodDescription(db));
  if (pn.ok()) {
    // Show the molecule rooted at the paper's point 'pn'.
    for (const mad::Molecule& m : pn->molecules()) {
      if (m.root() == ids->points["pn"]) {
        std::cout << mad::text::FormatMolecule(db, pn->description(), m);
      }
    }
  }
  auto mt_state =
      mad::DefineMoleculeType(db, "mt_state", MtStateDescription(db));
  if (mt_state.ok()) {
    std::cout << "\n" << mad::text::FormatMoleculeType(db, *mt_state, 3);
    // Shared subobjects: count points occurring in >1 state molecule.
    size_t point_idx = *mt_state->description().NodeIndex("point");
    std::map<mad::AtomId, int> uses;
    for (const mad::Molecule& m : mt_state->molecules()) {
      for (mad::AtomId id : m.AtomsOf(point_idx)) ++uses[id];
    }
    int shared = 0;
    for (const auto& [id, n] : uses) {
      if (n > 1) ++shared;
    }
    std::cout << "shared subobjects: " << shared
              << " point atom(s) belong to several state molecules\n\n";
  }
  return true;
}();

void BM_DeriveMtStateFigure4(benchmark::State& state) {
  mad::Database db("GEO_DB");
  auto ids = mad::workload::BuildFigure4GeoDatabase(db);
  if (!ids.ok()) {
    state.SkipWithError("fixture failed");
    return;
  }
  mad::MoleculeDescription md = MtStateDescription(db);
  for (auto _ : state) {
    auto mv = mad::DeriveMolecules(db, md);
    benchmark::DoNotOptimize(&mv);
  }
}
BENCHMARK(BM_DeriveMtStateFigure4);

void BM_DerivePointNeighborhoodFigure4(benchmark::State& state) {
  mad::Database db("GEO_DB");
  auto ids = mad::workload::BuildFigure4GeoDatabase(db);
  if (!ids.ok()) {
    state.SkipWithError("fixture failed");
    return;
  }
  mad::MoleculeDescription md = PointNeighborhoodDescription(db);
  for (auto _ : state) {
    auto mv = mad::DeriveMolecules(db, md);
    benchmark::DoNotOptimize(&mv);
  }
}
BENCHMARK(BM_DerivePointNeighborhoodFigure4);

/// Scaled derivation: one fixture per state-count argument.
class ScaledGeo : public benchmark::Fixture {
 public:
  void SetUp(::benchmark::State& state) override {
    if (db_ != nullptr && states_ == state.range(0)) return;
    states_ = state.range(0);
    db_ = std::make_unique<mad::Database>("SCALED");
    mad::workload::GeoScale scale;
    scale.states = static_cast<int>(states_);
    scale.rivers = scale.states / 5 + 1;
    auto stats = mad::workload::GenerateScaledGeo(*db_, scale);
    if (!stats.ok()) state.SkipWithError(stats.status().ToString().c_str());
  }

  static std::unique_ptr<mad::Database> db_;
  static int64_t states_;
};
std::unique_ptr<mad::Database> ScaledGeo::db_;
int64_t ScaledGeo::states_ = -1;

BENCHMARK_DEFINE_F(ScaledGeo, DeriveMtState)(benchmark::State& state) {
  mad::MoleculeDescription md = MtStateDescription(*db_);
  size_t molecules = 0;
  for (auto _ : state) {
    auto mv = mad::DeriveMolecules(*db_, md);
    if (mv.ok()) molecules = mv->size();
    benchmark::DoNotOptimize(&mv);
  }
  state.counters["molecules"] = static_cast<double>(molecules);
}
BENCHMARK_REGISTER_F(ScaledGeo, DeriveMtState)->Arg(10)->Arg(50)->Arg(200);

BENCHMARK_DEFINE_F(ScaledGeo, DerivePointNeighborhood)
(benchmark::State& state) {
  mad::MoleculeDescription md = PointNeighborhoodDescription(*db_);
  size_t molecules = 0;
  for (auto _ : state) {
    auto mv = mad::DeriveMolecules(*db_, md);
    if (mv.ok()) molecules = mv->size();
    benchmark::DoNotOptimize(&mv);
  }
  state.counters["molecules"] = static_cast<double>(molecules);
}
BENCHMARK_REGISTER_F(ScaledGeo, DerivePointNeighborhood)
    ->Arg(10)
    ->Arg(50)
    ->Arg(200);

/// Single-molecule derivation (the interactive navigation case).
BENCHMARK_DEFINE_F(ScaledGeo, DeriveSingleMolecule)(benchmark::State& state) {
  mad::MoleculeDescription md = MtStateDescription(*db_);
  auto root_type = db_->GetAtomType("state");
  if (!root_type.ok() || (*root_type)->occurrence().empty()) {
    state.SkipWithError("no states");
    return;
  }
  mad::AtomId root = (*root_type)->occurrence().atoms()[0].id;
  for (auto _ : state) {
    auto m = mad::DeriveMoleculeFor(*db_, md, root);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK_REGISTER_F(ScaledGeo, DeriveSingleMolecule)->Arg(50)->Arg(200);

}  // namespace
