// PERF-CLONE: database snapshot cost — the text serializer round trip the
// seed used for CloneDatabase versus the binary checkpoint codec that now
// backs it. Same scaled PERF-NM geo database; the binary path skips number
// formatting/parsing and token scanning entirely, so it should win by a
// wide margin and the gap should grow with database size.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "storage/binary_codec.h"
#include "storage/serializer.h"
#include "workload/geo.h"

namespace {

struct CloneFixture {
  std::unique_ptr<mad::Database> db;
  std::string text_image;
  std::string binary_image;
  int64_t states = -1;

  static CloneFixture& Get(benchmark::State& state) {
    static CloneFixture f;
    if (f.db == nullptr || f.states != state.range(0)) {
      f.states = state.range(0);
      f.db = std::make_unique<mad::Database>("SCALED");
      mad::workload::GeoScale scale;
      scale.states = static_cast<int>(f.states);
      scale.rivers = scale.states / 5 + 1;
      scale.shared_edge_fraction = 0.6;
      auto stats = mad::workload::GenerateScaledGeo(*f.db, scale);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        return f;
      }
      auto text = mad::SerializeDatabase(*f.db);
      auto binary = mad::SerializeDatabaseBinary(*f.db);
      if (!text.ok() || !binary.ok()) {
        state.SkipWithError("serialization failed");
        return f;
      }
      f.text_image = *std::move(text);
      f.binary_image = *std::move(binary);
    }
    return f;
  }
};

void BM_CloneTextRoundTrip(benchmark::State& state) {
  // The pre-binary-codec CloneDatabase: text serialize + parse back.
  auto& f = CloneFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto text = mad::SerializeDatabase(*f.db);
    if (!text.ok()) {
      state.SkipWithError(text.status().ToString().c_str());
      return;
    }
    auto clone = mad::DeserializeDatabase(*text);
    if (!clone.ok()) {
      state.SkipWithError(clone.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&clone);
  }
  state.counters["image_bytes"] = static_cast<double>(f.text_image.size());
}
BENCHMARK(BM_CloneTextRoundTrip)->Arg(10)->Arg(50)->Arg(200);

void BM_CloneBinary(benchmark::State& state) {
  // CloneDatabase as shipped: binary serialize + deserialize.
  auto& f = CloneFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto clone = mad::CloneDatabase(*f.db);
    if (!clone.ok()) {
      state.SkipWithError(clone.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&clone);
  }
  state.counters["image_bytes"] = static_cast<double>(f.binary_image.size());
}
BENCHMARK(BM_CloneBinary)->Arg(10)->Arg(50)->Arg(200);

void BM_SerializeText(benchmark::State& state) {
  auto& f = CloneFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto text = mad::SerializeDatabase(*f.db);
    if (!text.ok()) {
      state.SkipWithError(text.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&text);
  }
}
BENCHMARK(BM_SerializeText)->Arg(50)->Arg(200);

void BM_SerializeBinary(benchmark::State& state) {
  auto& f = CloneFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto bytes = mad::SerializeDatabaseBinary(*f.db);
    if (!bytes.ok()) {
      state.SkipWithError(bytes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&bytes);
  }
}
BENCHMARK(BM_SerializeBinary)->Arg(50)->Arg(200);

void BM_DeserializeText(benchmark::State& state) {
  auto& f = CloneFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto db = mad::DeserializeDatabase(f.text_image);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&db);
  }
}
BENCHMARK(BM_DeserializeText)->Arg(50)->Arg(200);

void BM_DeserializeBinary(benchmark::State& state) {
  auto& f = CloneFixture::Get(state);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto db = mad::DeserializeDatabaseBinary(f.binary_image);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&db);
  }
}
BENCHMARK(BM_DeserializeBinary)->Arg(50)->Arg(200);

const bool kHeaderPrinted = [] {
  std::cout << "==== PERF-CLONE: text round trip vs binary checkpoint codec "
               "(CloneDatabase) ====\n"
               "workload: scaled geo network snapshot, serialize + parse "
               "back into a fresh database\n\n";
  return true;
}();

}  // namespace
