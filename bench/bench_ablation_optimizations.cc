// ABLATION: the two engine design choices DESIGN.md calls out —
// (1) secondary attribute indexes behind the equality fast path of σ, and
// (2) root-predicate pushdown below molecule derivation. Each is measured
// against its disabled variant on the same workload. Expected shape:
// the index turns point restrictions from O(N) scans into O(hits); the
// pushdown makes selective molecule queries proportional to the qualifying
// roots instead of the whole occurrence.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "algebra/atom_algebra.h"
#include "expr/expr.h"
#include "mql/session.h"
#include "workload/geo.h"

namespace {

namespace e = mad::expr;

const bool kHeaderPrinted = [] {
  std::cout << "==== ABLATION: secondary indexes and root-predicate pushdown "
               "====\n\n";
  return true;
}();

struct AblationFixture {
  std::unique_ptr<mad::Database> db;
  int64_t states = -1;
  bool indexed = false;

  static AblationFixture& Get(benchmark::State& state, bool want_index) {
    static AblationFixture f;
    if (f.db == nullptr || f.states != state.range(0)) {
      f.states = state.range(0);
      f.db = std::make_unique<mad::Database>("SCALED");
      f.indexed = false;
      mad::workload::GeoScale scale;
      scale.states = static_cast<int>(f.states);
      auto stats = mad::workload::GenerateScaledGeo(*f.db, scale);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        f.db.reset();
        return f;
      }
    }
    if (want_index && !f.indexed) {
      auto s = f.db->CreateIndex("point", "name");
      if (!s.ok() && s.code() != mad::StatusCode::kAlreadyExists) {
        state.SkipWithError(s.ToString().c_str());
      }
      f.indexed = true;
    }
    if (!want_index && f.indexed) {
      auto s = f.db->DropIndex("point", "name");
      benchmark::DoNotOptimize(&s);
      f.indexed = false;
    }
    return f;
  }
};

void RunPointRestrict(benchmark::State& state, bool want_index) {
  auto& f = AblationFixture::Get(state, want_index);
  if (f.db == nullptr) return;
  // Look up one specific point by name.
  auto pred = e::Eq(e::Attr("name"), e::Lit("p1_1"));
  mad::algebra::AlgebraOptions options;
  options.inherit_links = false;
  for (auto _ : state) {
    auto result = mad::algebra::Restrict(*f.db, "point", pred, "", options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    state.PauseTiming();
    auto s = f.db->DropAtomType(result->atom_type);
    benchmark::DoNotOptimize(&s);
    state.ResumeTiming();
  }
}

void BM_PointRestrict_Scan(benchmark::State& state) {
  RunPointRestrict(state, false);
}
BENCHMARK(BM_PointRestrict_Scan)->Arg(50)->Arg(200)->Arg(800);

void BM_PointRestrict_Indexed(benchmark::State& state) {
  RunPointRestrict(state, true);
}
BENCHMARK(BM_PointRestrict_Indexed)->Arg(50)->Arg(200)->Arg(800);

void BM_PointLookup_Scan(benchmark::State& state) {
  auto& f = AblationFixture::Get(state, false);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto hits = f.db->LookupByAttribute("point", "name", mad::Value("p1_1"));
    benchmark::DoNotOptimize(&hits);
  }
}
BENCHMARK(BM_PointLookup_Scan)->Arg(200)->Arg(800);

void BM_PointLookup_Indexed(benchmark::State& state) {
  auto& f = AblationFixture::Get(state, true);
  if (f.db == nullptr) return;
  for (auto _ : state) {
    auto hits = f.db->LookupByAttribute("point", "name", mad::Value("p1_1"));
    benchmark::DoNotOptimize(&hits);
  }
}
BENCHMARK(BM_PointLookup_Indexed)->Arg(200)->Arg(800);

void RunSelectiveQuery(benchmark::State& state, bool pushdown) {
  auto& f = AblationFixture::Get(state, false);
  if (f.db == nullptr) return;
  mad::mql::SessionOptions options;
  options.enable_root_pushdown = pushdown;
  mad::mql::Session session(f.db.get(), options);
  const char* query =
      "SELECT ALL FROM m(state-area-edge-point) WHERE state.name = 'S1';";
  size_t molecules = 0;
  for (auto _ : state) {
    auto result = session.Execute(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    molecules = result->molecules->size();
  }
  state.counters["molecules"] = static_cast<double>(molecules);
}

void BM_SelectiveQuery_NoPushdown(benchmark::State& state) {
  RunSelectiveQuery(state, false);
}
BENCHMARK(BM_SelectiveQuery_NoPushdown)->Arg(50)->Arg(200)->Arg(800);

void BM_SelectiveQuery_Pushdown(benchmark::State& state) {
  RunSelectiveQuery(state, true);
}
BENCHMARK(BM_SelectiveQuery_Pushdown)->Arg(50)->Arg(200)->Arg(800);

void RunUnselectiveQuery(benchmark::State& state, bool pushdown) {
  // Sanity companion: with an unselective root predicate the pushdown
  // cannot help (derives nearly everything either way).
  auto& f = AblationFixture::Get(state, false);
  if (f.db == nullptr) return;
  mad::mql::SessionOptions options;
  options.enable_root_pushdown = pushdown;
  mad::mql::Session session(f.db.get(), options);
  const char* query =
      "SELECT ALL FROM m(state-area-edge-point) WHERE state.hectare >= 0;";
  for (auto _ : state) {
    auto result = session.Execute(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
  }
}

void BM_UnselectiveQuery_NoPushdown(benchmark::State& state) {
  RunUnselectiveQuery(state, false);
}
BENCHMARK(BM_UnselectiveQuery_NoPushdown)->Arg(200);

void BM_UnselectiveQuery_Pushdown(benchmark::State& state) {
  RunUnselectiveQuery(state, true);
}
BENCHMARK(BM_UnselectiveQuery_Pushdown)->Arg(200);

}  // namespace
