// EX-MQL1 / EX-MQL2: the two Ch. 4 MQL statements, measured end to end and
// stage by stage (parse, translate, execute), against the hand-built
// algebra pipeline they translate to. Expected shape: parsing and
// translation are noise compared to derivation, validating the paper's
// "algebra defines the language semantics" layering.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "expr/expr.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "mql/parser.h"
#include "mql/session.h"
#include "workload/geo.h"

namespace {

constexpr const char kQuery1[] =
    "SELECT ALL FROM mt_state(state-area-edge-point);";
constexpr const char kQuery2[] =
    "SELECT ALL FROM point-edge-(area-state,net-river) "
    "WHERE point.name = 'pn';";

const bool kExamplePrinted = [] {
  std::cout << "==== EX-MQL: Ch. 4 — MQL statements and their algebra "
               "translations ====\n"
            << "Q1: " << kQuery1 << "\n"
            << "    == a[mt_state, G](C)\n"
            << "Q2: " << kQuery2 << "\n"
            << "    == Sigma[restr(point.name='pn')](a[point-neighborhood, "
               "G'](C'))\n\n";
  return true;
}();

struct MqlFixture {
  std::unique_ptr<mad::Database> db;
  std::unique_ptr<mad::mql::Session> session;
  int64_t states = -1;

  static MqlFixture& Get(benchmark::State& state) {
    static MqlFixture f;
    if (f.db == nullptr || f.states != state.range(0)) {
      f.states = state.range(0);
      f.db = std::make_unique<mad::Database>("SCALED");
      if (f.states == 0) {
        // Arg 0 means the exact Figure-4 data.
        auto ids = mad::workload::BuildFigure4GeoDatabase(*f.db);
        if (!ids.ok()) state.SkipWithError("fixture failed");
      } else {
        mad::workload::GeoScale scale;
        scale.states = static_cast<int>(f.states);
        auto stats = mad::workload::GenerateScaledGeo(*f.db, scale);
        if (!stats.ok()) state.SkipWithError("fixture failed");
      }
      f.session = std::make_unique<mad::mql::Session>(f.db.get());
    }
    return f;
  }
};

void BM_ParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto q1 = mad::mql::ParseStatement(kQuery1);
    auto q2 = mad::mql::ParseStatement(kQuery2);
    benchmark::DoNotOptimize(&q1);
    benchmark::DoNotOptimize(&q2);
  }
}
BENCHMARK(BM_ParseOnly);

void BM_Query1EndToEnd(benchmark::State& state) {
  auto& f = MqlFixture::Get(state);
  if (f.session == nullptr) return;
  size_t molecules = 0;
  for (auto _ : state) {
    auto result = f.session->Execute(kQuery1);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    molecules = result->molecules->size();
  }
  state.counters["molecules"] = static_cast<double>(molecules);
}
BENCHMARK(BM_Query1EndToEnd)->Arg(0)->Arg(50)->Arg(200);

void BM_Query1HandBuiltAlgebra(benchmark::State& state) {
  auto& f = MqlFixture::Get(state);
  if (f.db == nullptr) return;
  auto md = mad::MoleculeDescription::CreateFromTypes(
      *f.db, {"state", "area", "edge", "point"},
      {{"state-area", "state", "area", false},
       {"area-edge", "area", "edge", false},
       {"edge-point", "edge", "point", false}});
  if (!md.ok()) {
    state.SkipWithError(md.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto mt = mad::DefineMoleculeType(*f.db, "mt_state", *md);
    benchmark::DoNotOptimize(&mt);
  }
}
BENCHMARK(BM_Query1HandBuiltAlgebra)->Arg(0)->Arg(50)->Arg(200);

void BM_Query2EndToEnd(benchmark::State& state) {
  auto& f = MqlFixture::Get(state);
  if (f.session == nullptr) return;
  size_t molecules = 0;
  for (auto _ : state) {
    auto result = f.session->Execute(kQuery2);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    molecules = result->molecules->size();
  }
  state.counters["molecules"] = static_cast<double>(molecules);
}
BENCHMARK(BM_Query2EndToEnd)->Arg(0)->Arg(50);

void BM_Query2HandBuiltAlgebra(benchmark::State& state) {
  auto& f = MqlFixture::Get(state);
  if (f.db == nullptr) return;
  auto md = mad::MoleculeDescription::CreateFromTypes(
      *f.db, {"point", "edge", "area", "state", "net", "river"},
      {{"edge-point", "point", "edge", false},
       {"area-edge", "edge", "area", false},
       {"state-area", "area", "state", false},
       {"net-edge", "edge", "net", false},
       {"river-net", "net", "river", false}});
  if (!md.ok()) {
    state.SkipWithError(md.status().ToString().c_str());
    return;
  }
  auto pred = mad::expr::Eq(mad::expr::Attr("point", "name"),
                            mad::expr::Lit("pn"));
  for (auto _ : state) {
    auto mt = mad::DefineMoleculeType(*f.db, "pn", *md);
    if (!mt.ok()) {
      state.SkipWithError("definition failed");
      return;
    }
    auto restricted = mad::RestrictMolecules(*f.db, *mt, pred, "pn1");
    benchmark::DoNotOptimize(&restricted);
  }
}
BENCHMARK(BM_Query2HandBuiltAlgebra)->Arg(0)->Arg(50);

void BM_RegisteredMoleculeTypeReuse(benchmark::State& state) {
  // Dynamic object definition amortised: the registered mt_state is
  // re-derived per query, but not re-translated.
  auto& f = MqlFixture::Get(state);
  if (f.session == nullptr) return;
  auto first = f.session->Execute(kQuery1);
  if (!first.ok()) {
    state.SkipWithError("registration failed");
    return;
  }
  for (auto _ : state) {
    auto result = f.session->Execute(
        "SELECT ALL FROM mt_state WHERE state.hectare > 1000;");
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_RegisteredMoleculeTypeReuse)->Arg(0)->Arg(50);

}  // namespace
