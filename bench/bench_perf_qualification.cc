// PERF-QUAL: compiled predicate programs vs the tree interpreter, and
// qualification pushdown on/off through the MQL session, over scaled
// geographic networks. Expected shape: compiled evaluation wins by the
// per-atom interpreter overhead it deletes (shared_ptr tree walks, string
// lookups, per-atom id hashing, SubstituteCounts rebuilds) — largest on
// deep existential scans and COUNT-heavy predicates; pushdown additionally
// prunes rejected molecules before their descendants expand.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <string>

#include "expr/compile.h"
#include "expr/expr.h"
#include "molecule/derivation.h"
#include "molecule/operations.h"
#include "molecule/qualification.h"
#include "mql/session.h"
#include "workload/geo.h"

namespace {

namespace e = mad::expr;

struct QualFixture {
  std::unique_ptr<mad::Database> db;
  std::unique_ptr<mad::MoleculeType> mt;
  int64_t states = -1;

  static QualFixture& Get(benchmark::State& state) {
    static QualFixture f;
    if (f.db == nullptr || f.states != state.range(0)) {
      f.states = state.range(0);
      f.db = std::make_unique<mad::Database>("SCALED");
      mad::workload::GeoScale scale;
      scale.states = static_cast<int>(f.states);
      scale.rivers = scale.states / 5 + 1;
      auto stats = mad::workload::GenerateScaledGeo(*f.db, scale);
      if (!stats.ok()) {
        state.SkipWithError(stats.status().ToString().c_str());
        f.db.reset();
        return f;
      }
      auto md = mad::MoleculeDescription::CreateFromTypes(
          *f.db, {"state", "area", "edge", "point"},
          {{"state-area", "state", "area", false},
           {"area-edge", "area", "edge", false},
           {"edge-point", "edge", "point", false}});
      if (!md.ok()) {
        state.SkipWithError(md.status().ToString().c_str());
        f.db.reset();
        return f;
      }
      auto mt = mad::DefineMoleculeType(*f.db, "mt_state", *md);
      if (!mt.ok()) {
        state.SkipWithError(mt.status().ToString().c_str());
        f.db.reset();
        return f;
      }
      f.mt = std::make_unique<mad::MoleculeType>(*std::move(mt));
    }
    return f;
  }
};

// The four qualification shapes the suite tracks.
e::ExprPtr ShallowPredicate() {
  return e::Gt(e::Attr("state", "hectare"), e::Lit(int64_t{1000}));
}
e::ExprPtr DeepPredicate() {
  return e::Gt(e::Attr("point", "x"), e::Lit(990.0));
}
e::ExprPtr CountPredicate() {
  return e::Ge(e::Count("point"), e::Lit(int64_t{4}));
}
e::ExprPtr ForAllPredicate() {
  return e::ForAll("point", e::Ge(e::Attr("point", "x"), e::Lit(0.0)));
}

/// One iteration = the full molecule set through MoleculeQualifier (the
/// tree-walking oracle).
void RunInterpreter(benchmark::State& state, const e::ExprPtr& pred) {
  auto& f = QualFixture::Get(state);
  if (f.db == nullptr) return;
  auto qualifier =
      mad::MoleculeQualifier::Create(*f.db, f.mt->description(), pred);
  if (!qualifier.ok()) {
    state.SkipWithError(qualifier.status().ToString().c_str());
    return;
  }
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const mad::Molecule& m : f.mt->molecules()) {
      auto verdict = qualifier->Matches(m);
      if (!verdict.ok()) {
        state.SkipWithError(verdict.status().ToString().c_str());
        return;
      }
      hits += *verdict ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["molecules"] = static_cast<double>(f.mt->size());
  state.counters["hits"] = static_cast<double>(hits);
}

/// One iteration = the full molecule set through the compiled program.
void RunCompiled(benchmark::State& state, const e::ExprPtr& pred) {
  auto& f = QualFixture::Get(state);
  if (f.db == nullptr) return;
  auto program =
      e::CompiledPredicate::Compile(*f.db, f.mt->description(), pred);
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  e::CompiledPredicate::Scratch scratch;
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const mad::Molecule& m : f.mt->molecules()) {
      auto verdict = program->EvalMolecule(m, scratch);
      if (!verdict.ok()) {
        state.SkipWithError(verdict.status().ToString().c_str());
        return;
      }
      hits += *verdict ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["molecules"] = static_cast<double>(f.mt->size());
  state.counters["hits"] = static_cast<double>(hits);
}

void BM_QualifyInterpreterShallow(benchmark::State& state) {
  RunInterpreter(state, ShallowPredicate());
}
void BM_QualifyCompiledShallow(benchmark::State& state) {
  RunCompiled(state, ShallowPredicate());
}
void BM_QualifyInterpreterDeep(benchmark::State& state) {
  RunInterpreter(state, DeepPredicate());
}
void BM_QualifyCompiledDeep(benchmark::State& state) {
  RunCompiled(state, DeepPredicate());
}
void BM_QualifyInterpreterCount(benchmark::State& state) {
  RunInterpreter(state, CountPredicate());
}
void BM_QualifyCompiledCount(benchmark::State& state) {
  RunCompiled(state, CountPredicate());
}
void BM_QualifyInterpreterForAll(benchmark::State& state) {
  RunInterpreter(state, ForAllPredicate());
}
void BM_QualifyCompiledForAll(benchmark::State& state) {
  RunCompiled(state, ForAllPredicate());
}
BENCHMARK(BM_QualifyInterpreterShallow)->Arg(100)->Arg(400);
BENCHMARK(BM_QualifyCompiledShallow)->Arg(100)->Arg(400);
BENCHMARK(BM_QualifyInterpreterDeep)->Arg(100)->Arg(400);
BENCHMARK(BM_QualifyCompiledDeep)->Arg(100)->Arg(400);
BENCHMARK(BM_QualifyInterpreterCount)->Arg(100)->Arg(400);
BENCHMARK(BM_QualifyCompiledCount)->Arg(100)->Arg(400);
BENCHMARK(BM_QualifyInterpreterForAll)->Arg(100)->Arg(400);
BENCHMARK(BM_QualifyCompiledForAll)->Arg(100)->Arg(400);

/// Σ as the operator now runs it: compiled program, optional worker pool.
void BM_SigmaCompiled(benchmark::State& state) {
  auto& f = QualFixture::Get(state);
  if (f.db == nullptr) return;
  auto pred = DeepPredicate();
  unsigned parallelism = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    auto result =
        mad::RestrictMolecules(*f.db, *f.mt, pred, "sigma", parallelism);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_SigmaCompiled)->Args({100, 1})->Args({400, 1})->Args({400, 4});

/// End-to-end MQL: derivation with the WHERE fused in (pushdown on) vs
/// derive-everything-then-restrict (pushdown off).
void RunSelect(benchmark::State& state, bool pushdown) {
  auto& f = QualFixture::Get(state);
  if (f.db == nullptr) return;
  mad::mql::SessionOptions options;
  options.enable_root_pushdown = pushdown;
  options.parallelism = 1;
  mad::mql::Session session(f.db.get(), options);
  const std::string query =
      "SELECT ALL FROM m(state-area-edge-point) WHERE point.x > 990.0;";
  size_t size = 0;
  for (auto _ : state) {
    auto result = session.Execute(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    size = result->molecules->size();
    benchmark::DoNotOptimize(&result);
  }
  state.counters["result_molecules"] = static_cast<double>(size);
}

void BM_SelectPushdownOff(benchmark::State& state) {
  RunSelect(state, false);
}
void BM_SelectPushdownOn(benchmark::State& state) {
  RunSelect(state, true);
}
BENCHMARK(BM_SelectPushdownOff)->Arg(100)->Arg(400);
BENCHMARK(BM_SelectPushdownOn)->Arg(100)->Arg(400);

const bool kHeaderPrinted = [] {
  std::cout << "==== PERF-QUAL: compiled qualification programs vs the tree "
               "interpreter, pushdown on/off ====\n\n";
  return true;
}();

}  // namespace
