# Empty compiler generated dependencies file for madlib.
# This may be replaced when dependencies are built.
