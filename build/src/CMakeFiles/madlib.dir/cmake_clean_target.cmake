file(REMOVE_RECURSE
  "libmadlib.a"
)
