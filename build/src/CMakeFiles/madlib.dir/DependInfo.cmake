
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/atom_algebra.cc" "src/CMakeFiles/madlib.dir/algebra/atom_algebra.cc.o" "gcc" "src/CMakeFiles/madlib.dir/algebra/atom_algebra.cc.o.d"
  "/root/repo/src/catalog/link_type.cc" "src/CMakeFiles/madlib.dir/catalog/link_type.cc.o" "gcc" "src/CMakeFiles/madlib.dir/catalog/link_type.cc.o.d"
  "/root/repo/src/core/data_type.cc" "src/CMakeFiles/madlib.dir/core/data_type.cc.o" "gcc" "src/CMakeFiles/madlib.dir/core/data_type.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/madlib.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/madlib.dir/core/schema.cc.o.d"
  "/root/repo/src/core/value.cc" "src/CMakeFiles/madlib.dir/core/value.cc.o" "gcc" "src/CMakeFiles/madlib.dir/core/value.cc.o.d"
  "/root/repo/src/er/er_model.cc" "src/CMakeFiles/madlib.dir/er/er_model.cc.o" "gcc" "src/CMakeFiles/madlib.dir/er/er_model.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/madlib.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/madlib.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/madlib.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/madlib.dir/expr/expr.cc.o.d"
  "/root/repo/src/molecule/derivation.cc" "src/CMakeFiles/madlib.dir/molecule/derivation.cc.o" "gcc" "src/CMakeFiles/madlib.dir/molecule/derivation.cc.o.d"
  "/root/repo/src/molecule/description.cc" "src/CMakeFiles/madlib.dir/molecule/description.cc.o" "gcc" "src/CMakeFiles/madlib.dir/molecule/description.cc.o.d"
  "/root/repo/src/molecule/molecule.cc" "src/CMakeFiles/madlib.dir/molecule/molecule.cc.o" "gcc" "src/CMakeFiles/madlib.dir/molecule/molecule.cc.o.d"
  "/root/repo/src/molecule/operations.cc" "src/CMakeFiles/madlib.dir/molecule/operations.cc.o" "gcc" "src/CMakeFiles/madlib.dir/molecule/operations.cc.o.d"
  "/root/repo/src/molecule/propagation.cc" "src/CMakeFiles/madlib.dir/molecule/propagation.cc.o" "gcc" "src/CMakeFiles/madlib.dir/molecule/propagation.cc.o.d"
  "/root/repo/src/molecule/qualification.cc" "src/CMakeFiles/madlib.dir/molecule/qualification.cc.o" "gcc" "src/CMakeFiles/madlib.dir/molecule/qualification.cc.o.d"
  "/root/repo/src/molecule/recursive.cc" "src/CMakeFiles/madlib.dir/molecule/recursive.cc.o" "gcc" "src/CMakeFiles/madlib.dir/molecule/recursive.cc.o.d"
  "/root/repo/src/molecule/statistics.cc" "src/CMakeFiles/madlib.dir/molecule/statistics.cc.o" "gcc" "src/CMakeFiles/madlib.dir/molecule/statistics.cc.o.d"
  "/root/repo/src/mql/lexer.cc" "src/CMakeFiles/madlib.dir/mql/lexer.cc.o" "gcc" "src/CMakeFiles/madlib.dir/mql/lexer.cc.o.d"
  "/root/repo/src/mql/optimizer.cc" "src/CMakeFiles/madlib.dir/mql/optimizer.cc.o" "gcc" "src/CMakeFiles/madlib.dir/mql/optimizer.cc.o.d"
  "/root/repo/src/mql/parser.cc" "src/CMakeFiles/madlib.dir/mql/parser.cc.o" "gcc" "src/CMakeFiles/madlib.dir/mql/parser.cc.o.d"
  "/root/repo/src/mql/session.cc" "src/CMakeFiles/madlib.dir/mql/session.cc.o" "gcc" "src/CMakeFiles/madlib.dir/mql/session.cc.o.d"
  "/root/repo/src/mql/translator.cc" "src/CMakeFiles/madlib.dir/mql/translator.cc.o" "gcc" "src/CMakeFiles/madlib.dir/mql/translator.cc.o.d"
  "/root/repo/src/relational/bridge.cc" "src/CMakeFiles/madlib.dir/relational/bridge.cc.o" "gcc" "src/CMakeFiles/madlib.dir/relational/bridge.cc.o.d"
  "/root/repo/src/relational/nf2.cc" "src/CMakeFiles/madlib.dir/relational/nf2.cc.o" "gcc" "src/CMakeFiles/madlib.dir/relational/nf2.cc.o.d"
  "/root/repo/src/relational/nf2_algebra.cc" "src/CMakeFiles/madlib.dir/relational/nf2_algebra.cc.o" "gcc" "src/CMakeFiles/madlib.dir/relational/nf2_algebra.cc.o.d"
  "/root/repo/src/relational/rel_algebra.cc" "src/CMakeFiles/madlib.dir/relational/rel_algebra.cc.o" "gcc" "src/CMakeFiles/madlib.dir/relational/rel_algebra.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/madlib.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/madlib.dir/relational/relation.cc.o.d"
  "/root/repo/src/storage/atom_store.cc" "src/CMakeFiles/madlib.dir/storage/atom_store.cc.o" "gcc" "src/CMakeFiles/madlib.dir/storage/atom_store.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/madlib.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/madlib.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/madlib.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/madlib.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/link_store.cc" "src/CMakeFiles/madlib.dir/storage/link_store.cc.o" "gcc" "src/CMakeFiles/madlib.dir/storage/link_store.cc.o.d"
  "/root/repo/src/storage/serializer.cc" "src/CMakeFiles/madlib.dir/storage/serializer.cc.o" "gcc" "src/CMakeFiles/madlib.dir/storage/serializer.cc.o.d"
  "/root/repo/src/text/printer.cc" "src/CMakeFiles/madlib.dir/text/printer.cc.o" "gcc" "src/CMakeFiles/madlib.dir/text/printer.cc.o.d"
  "/root/repo/src/util/digraph.cc" "src/CMakeFiles/madlib.dir/util/digraph.cc.o" "gcc" "src/CMakeFiles/madlib.dir/util/digraph.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/madlib.dir/util/status.cc.o" "gcc" "src/CMakeFiles/madlib.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/madlib.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/madlib.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/bom.cc" "src/CMakeFiles/madlib.dir/workload/bom.cc.o" "gcc" "src/CMakeFiles/madlib.dir/workload/bom.cc.o.d"
  "/root/repo/src/workload/geo.cc" "src/CMakeFiles/madlib.dir/workload/geo.cc.o" "gcc" "src/CMakeFiles/madlib.dir/workload/geo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
