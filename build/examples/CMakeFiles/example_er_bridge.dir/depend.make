# Empty dependencies file for example_er_bridge.
# This may be replaced when dependencies are built.
