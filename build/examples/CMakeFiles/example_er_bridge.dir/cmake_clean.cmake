file(REMOVE_RECURSE
  "CMakeFiles/example_er_bridge.dir/er_bridge.cpp.o"
  "CMakeFiles/example_er_bridge.dir/er_bridge.cpp.o.d"
  "example_er_bridge"
  "example_er_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_er_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
