file(REMOVE_RECURSE
  "CMakeFiles/example_geo_navigation.dir/geo_navigation.cpp.o"
  "CMakeFiles/example_geo_navigation.dir/geo_navigation.cpp.o.d"
  "example_geo_navigation"
  "example_geo_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_geo_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
