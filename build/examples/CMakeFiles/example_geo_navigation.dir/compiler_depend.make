# Empty compiler generated dependencies file for example_geo_navigation.
# This may be replaced when dependencies are built.
