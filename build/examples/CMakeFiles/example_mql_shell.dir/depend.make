# Empty dependencies file for example_mql_shell.
# This may be replaced when dependencies are built.
