file(REMOVE_RECURSE
  "CMakeFiles/example_mql_shell.dir/mql_shell.cpp.o"
  "CMakeFiles/example_mql_shell.dir/mql_shell.cpp.o.d"
  "example_mql_shell"
  "example_mql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
