file(REMOVE_RECURSE
  "CMakeFiles/example_office.dir/office.cpp.o"
  "CMakeFiles/example_office.dir/office.cpp.o.d"
  "example_office"
  "example_office.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_office.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
