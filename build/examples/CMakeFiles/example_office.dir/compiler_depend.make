# Empty compiler generated dependencies file for example_office.
# This may be replaced when dependencies are built.
