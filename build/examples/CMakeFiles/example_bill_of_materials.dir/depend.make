# Empty dependencies file for example_bill_of_materials.
# This may be replaced when dependencies are built.
