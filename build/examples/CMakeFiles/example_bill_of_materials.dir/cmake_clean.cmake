file(REMOVE_RECURSE
  "CMakeFiles/example_bill_of_materials.dir/bill_of_materials.cpp.o"
  "CMakeFiles/example_bill_of_materials.dir/bill_of_materials.cpp.o.d"
  "example_bill_of_materials"
  "example_bill_of_materials.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bill_of_materials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
