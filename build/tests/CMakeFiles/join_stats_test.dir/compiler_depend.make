# Empty compiler generated dependencies file for join_stats_test.
# This may be replaced when dependencies are built.
