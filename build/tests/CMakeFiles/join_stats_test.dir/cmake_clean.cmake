file(REMOVE_RECURSE
  "CMakeFiles/join_stats_test.dir/join_stats_test.cc.o"
  "CMakeFiles/join_stats_test.dir/join_stats_test.cc.o.d"
  "join_stats_test"
  "join_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
