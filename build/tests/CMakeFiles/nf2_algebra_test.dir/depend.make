# Empty dependencies file for nf2_algebra_test.
# This may be replaced when dependencies are built.
