file(REMOVE_RECURSE
  "CMakeFiles/nf2_algebra_test.dir/nf2_algebra_test.cc.o"
  "CMakeFiles/nf2_algebra_test.dir/nf2_algebra_test.cc.o.d"
  "nf2_algebra_test"
  "nf2_algebra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf2_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
