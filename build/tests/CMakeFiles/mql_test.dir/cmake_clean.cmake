file(REMOVE_RECURSE
  "CMakeFiles/mql_test.dir/mql_test.cc.o"
  "CMakeFiles/mql_test.dir/mql_test.cc.o.d"
  "mql_test"
  "mql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
