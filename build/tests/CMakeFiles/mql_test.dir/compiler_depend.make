# Empty compiler generated dependencies file for mql_test.
# This may be replaced when dependencies are built.
