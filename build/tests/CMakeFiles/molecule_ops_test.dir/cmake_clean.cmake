file(REMOVE_RECURSE
  "CMakeFiles/molecule_ops_test.dir/molecule_ops_test.cc.o"
  "CMakeFiles/molecule_ops_test.dir/molecule_ops_test.cc.o.d"
  "molecule_ops_test"
  "molecule_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
