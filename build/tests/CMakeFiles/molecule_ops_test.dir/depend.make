# Empty dependencies file for molecule_ops_test.
# This may be replaced when dependencies are built.
