# Empty dependencies file for atom_algebra_test.
# This may be replaced when dependencies are built.
