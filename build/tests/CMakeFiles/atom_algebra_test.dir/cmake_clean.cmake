file(REMOVE_RECURSE
  "CMakeFiles/atom_algebra_test.dir/atom_algebra_test.cc.o"
  "CMakeFiles/atom_algebra_test.dir/atom_algebra_test.cc.o.d"
  "atom_algebra_test"
  "atom_algebra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
