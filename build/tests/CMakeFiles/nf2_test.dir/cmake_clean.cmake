file(REMOVE_RECURSE
  "CMakeFiles/nf2_test.dir/nf2_test.cc.o"
  "CMakeFiles/nf2_test.dir/nf2_test.cc.o.d"
  "nf2_test"
  "nf2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
