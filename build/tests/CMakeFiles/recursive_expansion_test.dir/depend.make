# Empty dependencies file for recursive_expansion_test.
# This may be replaced when dependencies are built.
