file(REMOVE_RECURSE
  "CMakeFiles/recursive_expansion_test.dir/recursive_expansion_test.cc.o"
  "CMakeFiles/recursive_expansion_test.dir/recursive_expansion_test.cc.o.d"
  "recursive_expansion_test"
  "recursive_expansion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_expansion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
