# Empty dependencies file for molecule_test.
# This may be replaced when dependencies are built.
