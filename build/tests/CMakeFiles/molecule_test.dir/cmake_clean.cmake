file(REMOVE_RECURSE
  "CMakeFiles/molecule_test.dir/molecule_test.cc.o"
  "CMakeFiles/molecule_test.dir/molecule_test.cc.o.d"
  "molecule_test"
  "molecule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
