# Empty dependencies file for session_misc_test.
# This may be replaced when dependencies are built.
