file(REMOVE_RECURSE
  "CMakeFiles/session_misc_test.dir/session_misc_test.cc.o"
  "CMakeFiles/session_misc_test.dir/session_misc_test.cc.o.d"
  "session_misc_test"
  "session_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
