# Empty compiler generated dependencies file for bench_engine_infra.
# This may be replaced when dependencies are built.
