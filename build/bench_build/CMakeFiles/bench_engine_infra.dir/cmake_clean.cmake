file(REMOVE_RECURSE
  "../bench/bench_engine_infra"
  "../bench/bench_engine_infra.pdb"
  "CMakeFiles/bench_engine_infra.dir/bench_engine_infra.cc.o"
  "CMakeFiles/bench_engine_infra.dir/bench_engine_infra.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
