# Empty dependencies file for bench_perf_nm_traversal.
# This may be replaced when dependencies are built.
