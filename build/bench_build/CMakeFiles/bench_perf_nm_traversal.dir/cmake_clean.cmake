file(REMOVE_RECURSE
  "../bench/bench_perf_nm_traversal"
  "../bench/bench_perf_nm_traversal.pdb"
  "CMakeFiles/bench_perf_nm_traversal.dir/bench_perf_nm_traversal.cc.o"
  "CMakeFiles/bench_perf_nm_traversal.dir/bench_perf_nm_traversal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_nm_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
