file(REMOVE_RECURSE
  "../bench/bench_fig1_schema"
  "../bench/bench_fig1_schema.pdb"
  "CMakeFiles/bench_fig1_schema.dir/bench_fig1_schema.cc.o"
  "CMakeFiles/bench_fig1_schema.dir/bench_fig1_schema.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
