file(REMOVE_RECURSE
  "../bench/bench_ex_atom_algebra"
  "../bench/bench_ex_atom_algebra.pdb"
  "CMakeFiles/bench_ex_atom_algebra.dir/bench_ex_atom_algebra.cc.o"
  "CMakeFiles/bench_ex_atom_algebra.dir/bench_ex_atom_algebra.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex_atom_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
