# Empty compiler generated dependencies file for bench_ex_atom_algebra.
# This may be replaced when dependencies are built.
