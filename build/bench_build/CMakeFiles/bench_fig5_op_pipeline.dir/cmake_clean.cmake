file(REMOVE_RECURSE
  "../bench/bench_fig5_op_pipeline"
  "../bench/bench_fig5_op_pipeline.pdb"
  "CMakeFiles/bench_fig5_op_pipeline.dir/bench_fig5_op_pipeline.cc.o"
  "CMakeFiles/bench_fig5_op_pipeline.dir/bench_fig5_op_pipeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_op_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
