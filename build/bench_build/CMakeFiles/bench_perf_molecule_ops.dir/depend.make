# Empty dependencies file for bench_perf_molecule_ops.
# This may be replaced when dependencies are built.
