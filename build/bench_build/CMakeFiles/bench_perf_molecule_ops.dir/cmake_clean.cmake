file(REMOVE_RECURSE
  "../bench/bench_perf_molecule_ops"
  "../bench/bench_perf_molecule_ops.pdb"
  "CMakeFiles/bench_perf_molecule_ops.dir/bench_perf_molecule_ops.cc.o"
  "CMakeFiles/bench_perf_molecule_ops.dir/bench_perf_molecule_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_molecule_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
