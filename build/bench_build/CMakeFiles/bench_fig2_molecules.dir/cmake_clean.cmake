file(REMOVE_RECURSE
  "../bench/bench_fig2_molecules"
  "../bench/bench_fig2_molecules.pdb"
  "CMakeFiles/bench_fig2_molecules.dir/bench_fig2_molecules.cc.o"
  "CMakeFiles/bench_fig2_molecules.dir/bench_fig2_molecules.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_molecules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
