# Empty compiler generated dependencies file for bench_ex_mql.
# This may be replaced when dependencies are built.
