file(REMOVE_RECURSE
  "../bench/bench_ex_mql"
  "../bench/bench_ex_mql.pdb"
  "CMakeFiles/bench_ex_mql.dir/bench_ex_mql.cc.o"
  "CMakeFiles/bench_ex_mql.dir/bench_ex_mql.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex_mql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
