file(REMOVE_RECURSE
  "../bench/bench_fig4_formal_spec"
  "../bench/bench_fig4_formal_spec.pdb"
  "CMakeFiles/bench_fig4_formal_spec.dir/bench_fig4_formal_spec.cc.o"
  "CMakeFiles/bench_fig4_formal_spec.dir/bench_fig4_formal_spec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_formal_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
