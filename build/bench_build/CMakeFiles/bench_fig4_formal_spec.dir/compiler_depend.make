# Empty compiler generated dependencies file for bench_fig4_formal_spec.
# This may be replaced when dependencies are built.
