file(REMOVE_RECURSE
  "../bench/bench_perf_recursion"
  "../bench/bench_perf_recursion.pdb"
  "CMakeFiles/bench_perf_recursion.dir/bench_perf_recursion.cc.o"
  "CMakeFiles/bench_perf_recursion.dir/bench_perf_recursion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_recursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
