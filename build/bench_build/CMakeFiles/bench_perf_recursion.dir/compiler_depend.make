# Empty compiler generated dependencies file for bench_perf_recursion.
# This may be replaced when dependencies are built.
