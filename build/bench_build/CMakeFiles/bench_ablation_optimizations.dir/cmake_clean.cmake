file(REMOVE_RECURSE
  "../bench/bench_ablation_optimizations"
  "../bench/bench_ablation_optimizations.pdb"
  "CMakeFiles/bench_ablation_optimizations.dir/bench_ablation_optimizations.cc.o"
  "CMakeFiles/bench_ablation_optimizations.dir/bench_ablation_optimizations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
